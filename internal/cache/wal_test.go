package cache

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/seq"
)

func testKey(i uint64) Key {
	return Key{
		A:       seq.Digest{Hi: 0x1111 * i, Lo: 0x2222 ^ i},
		B:       seq.Digest{Hi: 0x3333 + i, Lo: 0x4444 * i},
		Params:  core.Params{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 2},
		Band:    32,
		MaxBand: 1024,
		Lanes:   64,
		Flags:   FlagTraceback | FlagEscalate,
	}
}

func testValue(i int) Value {
	return Value{
		Score:      int32(100 - i),
		InBand:     i%2 == 0,
		Status:     "ok",
		Provenance: "dpu-banded@64",
		Cigar:      []byte{byte(i), 1, 2, 3, byte(i >> 8)},
	}
}

func valueEq(a, b Value) bool {
	if a.Score != b.Score || a.InBand != b.InBand || a.Status != b.Status || a.Provenance != b.Provenance {
		return false
	}
	if len(a.Cigar) != len(b.Cigar) {
		return false
	}
	for i := range a.Cigar {
		if a.Cigar[i] != b.Cigar[i] {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		k    Key
		v    Value
	}{
		{"basic", testKey(1), testValue(1)},
		{"empty-value", Key{}, Value{}},
		{"no-cigar", testKey(2), Value{Score: -5, Status: "escalated", Provenance: "dpu-banded@64"}},
		{"negative-params", Key{Params: core.Params{Match: -1, Mismatch: -9, GapOpen: -3, GapExt: -7}},
			Value{Score: -(1 << 30), InBand: true}},
		{"big-cigar", testKey(3), Value{Score: 1, Status: "ok", Cigar: make([]byte, 100000)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf, err := appendFrame(nil, c.k, c.v)
			if err != nil {
				t.Fatal(err)
			}
			k, v, n, err := parseFrame(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(buf) {
				t.Fatalf("frameLen %d, want %d", n, len(buf))
			}
			if k != c.k {
				t.Fatalf("key round-trip mismatch:\n got %+v\nwant %+v", k, c.k)
			}
			if !valueEq(v, c.v) {
				t.Fatalf("value round-trip mismatch:\n got %+v\nwant %+v", v, c.v)
			}
		})
	}
}

func TestFrameOversizeFieldsRejected(t *testing.T) {
	long := make([]byte, 300)
	if _, err := appendFrame(nil, testKey(1), Value{Status: string(long)}); err == nil {
		t.Error("301-byte status accepted")
	}
	if _, err := appendFrame(nil, testKey(1), Value{Provenance: string(long)}); err == nil {
		t.Error("301-byte provenance accepted")
	}
	if _, err := appendFrame(nil, testKey(1), Value{Cigar: make([]byte, maxRecordBytes+1)}); err == nil {
		t.Error("oversize cigar accepted")
	}
}

// TestFrameBitFlipRejected: flipping any single byte of a frame must make
// parseFrame fail — nothing may decode to a different-but-valid record.
func TestFrameBitFlipRejected(t *testing.T) {
	buf, err := appendFrame(nil, testKey(7), testValue(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x5a
		k, v, _, err := parseFrame(mut)
		if err == nil {
			// A flipped byte in the length prefix may still parse iff the
			// resulting shorter/longer frame happens to checksum — it cannot,
			// because the checksum covers the payload whose bounds shifted.
			t.Errorf("byte %d flipped: parse succeeded with k=%+v v=%+v", i, k, v)
		}
	}
}

func TestFrameTornPrefixes(t *testing.T) {
	buf, err := appendFrame(nil, testKey(9), testValue(9))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		_, _, _, err := parseFrame(buf[:n])
		if err != errTornFrame {
			t.Fatalf("prefix of %d/%d bytes: got %v, want errTornFrame", n, len(buf), err)
		}
	}
}

func TestFrameHugeLengthPrefixRejected(t *testing.T) {
	buf := make([]byte, 64)
	binary.LittleEndian.PutUint32(buf, uint32(maxRecordBytes+1))
	if _, _, _, err := parseFrame(buf); err != errRecordTooBig {
		t.Fatalf("got %v, want errRecordTooBig", err)
	}
}

// walFile writes a WAL with n records and returns its path plus each
// record's frame boundaries.
func walFile(t *testing.T, dir string, n int) (path string, bounds []int64) {
	t.Helper()
	path = filepath.Join(dir, "cache.wal")
	buf := []byte(walMagic)
	bounds = append(bounds, int64(len(buf)))
	for i := 0; i < n; i++ {
		var err error
		buf, err = appendFrame(buf, testKey(uint64(i+1)), testValue(i+1))
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, int64(len(buf)))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, bounds
}

func openCount(t *testing.T, path string) (recs int, size int64, repairs int) {
	t.Helper()
	f, size, repairs, err := openWAL(path, func(Key, Value, recRef) { recs++ })
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	return recs, size, repairs
}

// TestWALRecoveryTable drives the startup repair through every corruption
// class: clean file, torn tail at each byte boundary of the last frame,
// a bit flip in each region of a middle record, and header damage.
func TestWALRecoveryTable(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		path, bounds := walFile(t, t.TempDir(), 5)
		recs, size, repairs := openCount(t, path)
		if recs != 5 || repairs != 0 || size != bounds[5] {
			t.Fatalf("recs=%d size=%d repairs=%d, want 5/%d/0", recs, size, repairs, bounds[5])
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		// Truncating anywhere inside the final frame must drop exactly that
		// frame and repair the file to the previous boundary.
		path, bounds := walFile(t, t.TempDir(), 3)
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for cut := bounds[2] + 1; cut < bounds[3]; cut += 3 {
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			recs, size, repairs := openCount(t, path)
			if recs != 2 || repairs != 1 || size != bounds[2] {
				t.Fatalf("cut=%d: recs=%d size=%d repairs=%d, want 2/%d/1",
					cut, recs, size, repairs, bounds[2])
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != bounds[2] {
				t.Fatalf("cut=%d: file not truncated: %d bytes", cut, st.Size())
			}
		}
	})

	t.Run("bit-flip-middle", func(t *testing.T) {
		// A corrupt byte inside record 2 of 4 must truncate at record 2's
		// start: records 3 and 4 are unreachable once framing is broken.
		path, bounds := walFile(t, t.TempDir(), 4)
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := bounds[1]; off < bounds[2]; off += 7 {
			mut := append([]byte(nil), full...)
			mut[off] ^= 0xff
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			recs, size, repairs := openCount(t, path)
			if recs != 1 || repairs != 1 || size != bounds[1] {
				t.Fatalf("flip@%d: recs=%d size=%d repairs=%d, want 1/%d/1",
					off, recs, size, repairs, bounds[1])
			}
		}
	})

	t.Run("empty-file", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cache.wal")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, size, repairs := openCount(t, path)
		if recs != 0 || repairs != 0 || size != int64(len(walMagic)) {
			t.Fatalf("recs=%d size=%d repairs=%d", recs, size, repairs)
		}
	})

	t.Run("short-header", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cache.wal")
		if err := os.WriteFile(path, []byte(walMagic[:3]), 0o644); err != nil {
			t.Fatal(err)
		}
		recs, size, repairs := openCount(t, path)
		if recs != 0 || repairs != 1 || size != int64(len(walMagic)) {
			t.Fatalf("recs=%d size=%d repairs=%d", recs, size, repairs)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cache.wal")
		if err := os.WriteFile(path, []byte("NOTAWAL\n plus contents"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := openWAL(path, func(Key, Value, recRef) {})
		if err == nil {
			t.Fatal("bad magic accepted")
		}
		// The file must be untouched: refusing to repair foreign files.
		b, rerr := os.ReadFile(path)
		if rerr != nil || string(b) != "NOTAWAL\n plus contents" {
			t.Fatalf("foreign file was modified: %q", b)
		}
	})
}

// TestWALRepairThenAppend proves a repaired WAL accepts new appends and
// replays them on the next open — the truncation leaves the file
// frame-aligned.
func TestWALRepairThenAppend(t *testing.T) {
	dir := t.TempDir()
	path, bounds := walFile(t, dir, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:bounds[3]-2], 0o644); err != nil {
		t.Fatal(err)
	}
	f, size, repairs, err := openWAL(path, func(Key, Value, recRef) {})
	if err != nil {
		t.Fatal(err)
	}
	if repairs != 1 || size != bounds[2] {
		t.Fatalf("size=%d repairs=%d, want %d/1", size, repairs, bounds[2])
	}
	frame, err := appendFrame(nil, testKey(99), testValue(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var keys []Key
	f2, size2, repairs2, err := openWAL(path, func(k Key, _ Value, _ recRef) { keys = append(keys, k) })
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if repairs2 != 0 || size2 != bounds[2]+int64(len(frame)) {
		t.Fatalf("reopen: size=%d repairs=%d", size2, repairs2)
	}
	if len(keys) != 3 || keys[2] != testKey(99) {
		t.Fatalf("reopen replayed %d records, last %+v", len(keys), keys[len(keys)-1])
	}
}
