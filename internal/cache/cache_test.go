package cache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	opts.Dir = dir
	opts.Fsync = FsyncNever
	c, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCacheInsertLookup(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{})
	k, v := testKey(1), testValue(1)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("lookup hit on empty cache")
	}
	if err := c.Insert(k, v); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup(k)
	if !ok || !valueEq(got, v) {
		t.Fatalf("lookup after insert: ok=%v got=%+v", ok, got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{})
	for i := 1; i <= 50; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one key: the later append must win on replay.
	updated := testValue(7)
	updated.Score = 12345
	if err := c.Insert(testKey(7), updated); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openTest(t, dir, Options{})
	if s := c2.Stats(); s.Entries != 50 || s.Repairs != 0 {
		t.Fatalf("reopen stats %+v", s)
	}
	for i := 1; i <= 50; i++ {
		want := testValue(i)
		if i == 7 {
			want = updated
		}
		got, ok := c2.Lookup(testKey(uint64(i)))
		if !ok || !valueEq(got, want) {
			t.Fatalf("key %d after reopen: ok=%v got=%+v want=%+v", i, ok, got, want)
		}
	}
}

// TestCacheDiskHitAfterHotEviction exercises the disk path: a key pushed
// out of the hot tier must still hit via the index, then be promoted back.
func TestCacheDiskHitAfterHotEviction(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{HotEntries: 4})
	for i := 1; i <= 64; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	hitAll := func() {
		for i := 1; i <= 64; i++ {
			got, ok := c.Lookup(testKey(uint64(i)))
			if !ok || !valueEq(got, testValue(i)) {
				t.Fatalf("key %d: ok=%v got=%+v", i, ok, got)
			}
		}
	}
	hitAll()
	c.mu.RLock()
	hotLen := len(c.hot)
	c.mu.RUnlock()
	if hotLen > 4 {
		t.Fatalf("hot tier grew to %d entries, bound is 4", hotLen)
	}
	hitAll()
	if s := c.Stats(); s.Hits != 128 || s.Misses != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheIndexEviction(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{MaxEntries: 10, HotEntries: 2})
	for i := 1; i <= 30; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 10 || s.Evictions != 20 {
		t.Fatalf("stats %+v", s)
	}
	if s.LiveBytes >= s.WALBytes {
		t.Fatalf("eviction left no dead bytes: %+v", s)
	}
	hits := 0
	for i := 1; i <= 30; i++ {
		if _, ok := c.Lookup(testKey(uint64(i))); ok {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("%d hits after eviction, want 10", hits)
	}
}

func TestCacheSetLimits(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{MaxEntries: 100, HotEntries: 100})
	for i := 1; i <= 50; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.SetLimits(8, 3)
	s := c.Stats()
	if s.Entries != 8 || s.HotEntries > 3 {
		t.Fatalf("after SetLimits(8,3): %+v", s)
	}
	// Loosening must not evict further.
	c.SetLimits(1000, 1000)
	if s := c.Stats(); s.Entries != 8 {
		t.Fatalf("after loosening: %+v", s)
	}
}

func TestCacheCompact(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{MaxEntries: 10})
	for i := 1; i <= 40; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.WALBytes >= before.WALBytes {
		t.Fatalf("compaction did not shrink the WAL: %d -> %d", before.WALBytes, after.WALBytes)
	}
	if after.Entries != 10 || after.Compactions != 1 {
		t.Fatalf("after compact: %+v", after)
	}
	// Entries must survive compaction, through the new file...
	live := 0
	for i := 1; i <= 40; i++ {
		if v, ok := c.Lookup(testKey(uint64(i))); ok {
			if !valueEq(v, testValue(i)) {
				t.Fatalf("key %d corrupted by compaction: %+v", i, v)
			}
			live++
		}
	}
	if live != 10 {
		t.Fatalf("%d live after compaction, want 10", live)
	}
	// ...and inserts/reopen must keep working against the renamed file.
	if err := c.Insert(testKey(1000), testValue(17)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := openTest(t, dir, Options{})
	if s := c2.Stats(); s.Entries != 11 || s.Repairs != 0 {
		t.Fatalf("reopen after compact: %+v", s)
	}
	if v, ok := c2.Lookup(testKey(1000)); !ok || !valueEq(v, testValue(17)) {
		t.Fatalf("post-compact insert lost: ok=%v v=%+v", ok, v)
	}
}

// TestCacheCrashRecovery simulates a kill -9 mid-append: the WAL gets a
// torn final frame, reopen must repair it and serve every earlier record.
func TestCacheCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{})
	for i := 1; i <= 20; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	// Tear the tail: chop 3 bytes off the last frame without telling anyone.
	path := filepath.Join(dir, "cache.wal")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openTest(t, dir, Options{})
	s := c2.Stats()
	if s.Repairs != 1 || s.Entries != 19 {
		t.Fatalf("recovery stats %+v, want 1 repair, 19 entries", s)
	}
	for i := 1; i <= 19; i++ {
		v, ok := c2.Lookup(testKey(uint64(i)))
		if !ok || !valueEq(v, testValue(i)) {
			t.Fatalf("key %d after crash recovery: ok=%v v=%+v", i, ok, v)
		}
	}
	if _, ok := c2.Lookup(testKey(20)); ok {
		t.Fatal("torn record 20 was served")
	}
}

func TestCacheFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(Options{Dir: dir, Fsync: pol, FsyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Insert(testKey(1), testValue(1)); err != nil {
				t.Fatal(err)
			}
			if pol == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the ticker sync once
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			c2 := openTest(t, dir, Options{})
			if _, ok := c2.Lookup(testKey(1)); !ok {
				t.Fatal("entry lost")
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", c.in, got, err)
		}
	}
}

// TestCacheConcurrent hammers lookups, inserts, stats, limit changes and
// a compaction from many goroutines; run under -race this proves the
// locking discipline.
func TestCacheConcurrent(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{MaxEntries: 256, HotEntries: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := testKey(uint64(g*1000 + i%50))
				if i%3 == 0 {
					if err := c.Insert(k, testValue(i)); err != nil {
						t.Error(err)
						return
					}
				} else if v, ok := c.Lookup(k); ok && v.Provenance == "" {
					t.Error("hit returned empty provenance")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = c.Stats()
			c.SetLimits(200+i, 16+i)
			if i == 10 {
				if err := c.Compact(); err != nil {
					t.Error(err)
				}
			}
		}
	}()
	wg.Wait()
}

// TestCacheHotLookupZeroAlloc pins the satellite requirement: a hot-tier
// hit performs zero allocations.
func TestCacheHotLookupZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, Options{})
	k := testKey(1)
	if err := c.Insert(k, testValue(1)); err != nil {
		t.Fatal(err)
	}
	var sink Value
	allocs := testing.AllocsPerRun(200, func() {
		sink, _ = c.Lookup(k)
	})
	if allocs != 0 {
		t.Fatalf("hot lookup allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}
