package cache

import (
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/seq"
)

// FuzzWALRecordRoundTrip fuzzes the frame codec from both directions:
// any record must survive encode∘decode byte-exactly, and any single
// corrupted byte of the encoding must be rejected (no frame may decode
// to a different-but-plausible record).
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4),
		int32(2), int32(-4), int32(4), int32(2),
		int32(32), int32(1024), int32(64), uint8(3),
		int32(100), true, "ok", "dpu-banded@64", []byte{0, 1, 2}, uint16(5))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0),
		int32(0), int32(0), int32(0), int32(0),
		int32(0), int32(0), int32(0), uint8(0),
		int32(-1), false, "", "", []byte(nil), uint16(0))
	f.Fuzz(func(t *testing.T,
		aHi, aLo, bHi, bLo uint64,
		match, mismatch, gapOpen, gapExt int32,
		band, maxBand, lanes int32, flags uint8,
		score int32, inBand bool, status, provenance string, cigar []byte,
		corrupt uint16) {

		k := Key{
			A:      seq.Digest{Hi: aHi, Lo: aLo},
			B:      seq.Digest{Hi: bHi, Lo: bLo},
			Params: core.Params{Match: match, Mismatch: mismatch, GapOpen: gapOpen, GapExt: gapExt},
			Band:   band, MaxBand: maxBand, Lanes: lanes, Flags: flags,
		}
		v := Value{Score: score, InBand: inBand, Status: status, Provenance: provenance, Cigar: cigar}

		buf, err := appendFrame(nil, k, v)
		if err != nil {
			// Only over-long variable fields may fail to encode.
			if len(status) <= 0xff && len(provenance) <= 0xff && len(cigar) <= maxRecordBytes {
				t.Fatalf("appendFrame rejected an encodable record: %v", err)
			}
			return
		}

		gk, gv, n, err := parseFrame(buf)
		if err != nil {
			t.Fatalf("decode of a fresh frame failed: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("frameLen %d, want %d", n, len(buf))
		}
		if gk != k {
			t.Fatalf("key mismatch:\n got %+v\nwant %+v", gk, k)
		}
		if !valueEq(gv, v) {
			t.Fatalf("value mismatch:\n got %+v\nwant %+v", gv, v)
		}

		// Corrupt one byte (position and xor pattern drawn from the fuzz
		// input) — the parse must now fail, not return a mutated record.
		pos := int(corrupt) % len(buf)
		pat := byte(corrupt>>8) | 1 // never a zero xor
		mut := append([]byte(nil), buf...)
		mut[pos] ^= pat
		if mk, mv, _, err := parseFrame(mut); err == nil {
			t.Fatalf("corrupt byte %d (xor %#x) accepted: k=%+v v=%+v", pos, pat, mk, mv)
		}
	})
}
