package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Satellite regression: compaction swaps the WAL fd out from under
// concurrent readers and the interval fsync loop. Before the fix,
// Lookup dropped the read lock before re-reading its disk frame, so a
// concurrent compact could close the old fd mid-read ("file already
// closed") or move the frame under a stale offset — either way the
// lookup not only missed but deleted the (perfectly live) entry from
// the post-compaction index. Under -race the unlocked c.f read is also
// a straight data race with the fd swap. The test hammers
// Lookup/Insert/Compact concurrently with a live 1ms fsync loop, then
// closes and reopens to prove every record survived.
func TestCompactConcurrentWithLookupsAndSyncLoop(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{
		Dir:           dir,
		Fsync:         FsyncInterval,
		FsyncInterval: time.Millisecond, // keep the sync loop hot
		HotEntries:    1,                // force lookups to the disk path
	})
	if err != nil {
		t.Fatal(err)
	}

	const keys = 128
	for i := 0; i < keys; i++ {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites create dead bytes so every compaction really rewrites.
	for i := 0; i < keys; i += 2 {
		if err := c.Insert(testKey(uint64(i)), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var lookupFailures atomic.Int64

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(i % keys)
				if v, ok := c.Lookup(testKey(k)); !ok {
					lookupFailures.Add(1)
				} else if !valueEq(v, testValue(int(k))) {
					t.Errorf("lookup %d returned a different value", k)
					return
				}
				i++
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(i % keys)
			if err := c.Insert(testKey(k), testValue(int(k))); err != nil {
				t.Errorf("insert during compaction storm: %v", err)
				return
			}
			i++
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := lookupFailures.Load(); n > 0 {
		t.Errorf("%d lookups of live keys failed during compaction", n)
	}
	st := c.Stats()
	if st.Entries != keys {
		t.Errorf("index holds %d entries after the storm, want %d", st.Entries, keys)
	}
	if st.Compactions == 0 {
		t.Error("storm never compacted; the test exercised nothing")
	}
	// Close must deliver the final interval sync, then every record must
	// replay from the compacted file.
	if err := c.Close(); err != nil {
		t.Fatalf("close after compaction storm: %v", err)
	}
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after compaction storm: %v", err)
	}
	defer c2.Close()
	if got := c2.Stats().Entries; got != keys {
		t.Fatalf("reopened cache replayed %d entries, want %d", got, keys)
	}
	for i := 0; i < keys; i++ {
		v, ok := c2.Lookup(testKey(uint64(i)))
		if !ok {
			t.Fatalf("key %d lost across compaction + reopen", i)
		}
		if !valueEq(v, testValue(i)) {
			t.Fatalf("key %d replayed a different value", i)
		}
	}
}
