// Package cache is a persistent, content-addressed result cache for the
// serving path. A Key identifies an alignment problem — the 128-bit
// digests of the two packed operands plus everything else that shapes
// the answer (scoring params, band policy, effective lane width,
// traceback/escalation mode) — and a Value carries the certified result
// (score, CIGAR, provenance, trusted status). Entries persist in an
// append-only WAL (see wal.go); an in-memory index maps keys to disk
// frames under a bounded entry budget, and a small write-through hot
// tier serves repeat keys without touching the disk at all.
//
// Only certified-optimal, non-degraded results belong here: the caller
// (host.Session) filters by pair status and shed labels before Insert.
// The cache itself never relabels — a hit replays the stored status and
// provenance byte for byte.
package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pimnw/internal/core"
	"pimnw/internal/obs"
	"pimnw/internal/seq"
)

// Key flag bits.
const (
	// FlagTraceback marks a full-alignment (CIGAR-producing) run; score-only
	// results live under a distinct key so a score-only hit can never be
	// served to a traceback request.
	FlagTraceback uint8 = 1 << 0
	// FlagEscalate marks a run performed under the adaptive band-escalation
	// policy, whose ceiling is carried in Key.MaxBand.
	FlagEscalate uint8 = 1 << 1
)

// Key identifies one alignment problem. It is comparable (usable as a
// map key) and contains every knob that can change the stored answer:
// two content digests, the scoring model, the band policy (initial band
// plus escalation ceiling), the effective lane width, and the mode
// flags. Anything not in the Key must not influence the result.
type Key struct {
	A, B    seq.Digest
	Params  core.Params
	Band    int32
	MaxBand int32
	Lanes   int32
	Flags   uint8
}

// Value is one certified result. Status and Provenance are stored as the
// host's stable string names (not enum ordinals) so the on-disk format
// survives enum reordering; the host parses Status back and refuses to
// serve anything it cannot parse as a trusted status.
type Value struct {
	Score      int32
	InBand     bool
	Status     string
	Provenance string
	Cigar      []byte
}

// Fsync policies.
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs on a background ticker: bounded
	// data loss (at most one interval of inserts) at near-FsyncNever cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every insert: no committed entry is ever
	// lost, at the price of a disk round-trip per insert.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache. A crash may lose
	// recent inserts (never corrupt the survivors — repair truncates any
	// torn tail). Right for scratch/experiment caches.
	FsyncNever
)

// ParseFsyncPolicy maps the config spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "", "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("cache: unknown fsync policy %q (want always, interval or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// Options configures Open.
type Options struct {
	// Dir is the cache directory; the WAL lives at Dir/cache.wal.
	Dir string
	// Fsync selects the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 1s).
	FsyncInterval time.Duration
	// MaxEntries bounds the in-memory index (default 1<<20). Evicted
	// entries stay on disk as dead bytes until compaction.
	MaxEntries int
	// HotEntries bounds the in-process hot tier (default 4096).
	HotEntries int
	// CompactInterval enables background compaction when positive: every
	// interval, the WAL is rewritten without dead bytes if they dominate.
	CompactInterval time.Duration
	// MinCompactBytes is the WAL size below which background compaction
	// never triggers (default 4 MiB) — rewriting a tiny file buys nothing.
	MinCompactBytes int64
}

func (o *Options) fill() {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = time.Second
	}
	if o.MaxEntries <= 0 {
		o.MaxEntries = 1 << 20
	}
	if o.HotEntries <= 0 {
		o.HotEntries = 4096
	}
	if o.MinCompactBytes <= 0 {
		o.MinCompactBytes = 4 << 20
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries     int   // live index entries
	HotEntries  int   // hot-tier entries
	Hits        int64 // lookups served (hot + disk)
	Misses      int64 // lookups not served
	Inserts     int64 // records appended this process
	InsertBytes int64 // WAL bytes appended this process
	WALBytes    int64 // current WAL file size
	LiveBytes   int64 // WAL bytes reachable from the index
	Repairs     int64 // startup truncations (torn/corrupt tails)
	Evictions   int64 // index entries dropped to the RAM bound
	Compactions int64 // WAL rewrites completed
}

// Cache is the concurrent cache handle. All methods are safe for
// concurrent use; Lookup on the hot tier takes only a read lock and
// performs zero allocations.
type Cache struct {
	mu   sync.RWMutex
	f    *os.File
	path string
	idx  map[Key]recRef
	hot  map[Key]Value
	size int64 // WAL file size (all appended bytes)
	live int64 // bytes reachable from idx
	buf  []byte
	opts Options

	closed bool
	dirty  atomic.Bool // unsynced appends pending (FsyncInterval)
	stop   chan struct{}
	wg     sync.WaitGroup

	hits, misses          atomic.Int64
	inserts, insertBytes  atomic.Int64
	repairs               atomic.Int64
	evictions, compactRun atomic.Int64

	// obs counters, resolved once at Open (nil-safe if no registry).
	cHits, cMisses, cInserts, cInsertBytes, cRepairs, cEvictions *obs.Counter
}

// Open opens (creating if needed) the cache under opts.Dir, replaying
// and repairing the WAL. The returned handle owns the file; Close it.
func Open(opts Options) (*Cache, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("cache: Options.Dir is required")
	}
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := obs.Default()
	c := &Cache{
		path: filepath.Join(opts.Dir, "cache.wal"),
		idx:  make(map[Key]recRef),
		hot:  make(map[Key]Value, opts.HotEntries),
		opts: opts,
		stop: make(chan struct{}),

		cHits:        reg.Counter("cache_hits_total"),
		cMisses:      reg.Counter("cache_misses_total"),
		cInserts:     reg.Counter("cache_inserts_total"),
		cInsertBytes: reg.Counter("cache_insert_bytes_total"),
		cRepairs:     reg.Counter("cache_wal_repairs_total"),
		cEvictions:   reg.Counter("cache_evictions_total"),
	}
	f, size, repairs, err := openWAL(c.path, func(k Key, v Value, r recRef) {
		if prev, ok := c.idx[k]; ok {
			c.live -= int64(prev.n) // later append wins
		}
		c.idx[k] = r
		c.live += int64(r.n)
		if len(c.idx) > opts.MaxEntries {
			c.evictLocked(len(c.idx) - opts.MaxEntries)
		}
	})
	if err != nil {
		return nil, err
	}
	c.f, c.size = f, size
	if repairs > 0 {
		c.repairs.Add(int64(repairs))
		c.cRepairs.Add(int64(repairs))
		obs.Flight().Recordf("cache", "", "wal repair: truncated %s to %d bytes (%d live records)",
			c.path, size, len(c.idx))
	}
	reg.Gauge("cache_entries").Set(float64(len(c.idx)))
	if opts.Fsync == FsyncInterval {
		c.wg.Add(1)
		go c.syncLoop()
	}
	if opts.CompactInterval > 0 {
		c.wg.Add(1)
		go c.compactLoop()
	}
	return c, nil
}

// Lookup returns the stored value for k, if any. Hot-tier hits allocate
// nothing; index hits re-read and re-checksum the disk frame (a frame
// that fails validation is dropped and reported as a miss, never served).
// The returned Value's Cigar and strings are shared — callers must treat
// them as read-only.
func (c *Cache) Lookup(k Key) (Value, bool) {
	c.mu.RLock()
	if v, ok := c.hot[k]; ok {
		c.mu.RUnlock()
		c.hits.Add(1)
		c.cHits.Add(1)
		return v, true
	}
	ref, ok := c.idx[k]
	if !ok {
		c.mu.RUnlock()
		c.misses.Add(1)
		c.cMisses.Add(1)
		return Value{}, false
	}
	// The frame read happens under the same read lock that produced ref:
	// a concurrent compaction swaps the fd and rewrites every offset
	// under the write lock, so dropping the lock here would let the read
	// hit the closed old fd (or the new file at a stale offset) and then
	// delete a perfectly live entry below.
	v, err := c.readFrame(k, ref)
	c.mu.RUnlock()
	if err != nil {
		// The frame went bad on disk after passing startup repair (bit rot,
		// or an external truncation). Drop it so we stop paying the read.
		c.mu.Lock()
		if cur, still := c.idx[k]; still && cur == ref {
			delete(c.idx, k)
			c.live -= int64(ref.n)
		}
		c.mu.Unlock()
		obs.Flight().Recordf("cache", "", "dropped unreadable record at off=%d: %v", ref.off, err)
		c.misses.Add(1)
		c.cMisses.Add(1)
		return Value{}, false
	}
	// Promote to the hot tier so the next hit is memory-speed.
	c.mu.Lock()
	if !c.closed {
		c.hot[k] = v
		c.trimHotLocked()
	}
	c.mu.Unlock()
	c.hits.Add(1)
	c.cHits.Add(1)
	return v, true
}

// readFrame re-reads and fully re-validates one frame from disk.
func (c *Cache) readFrame(k Key, ref recRef) (Value, error) {
	buf := make([]byte, ref.n)
	if _, err := c.f.ReadAt(buf, ref.off); err != nil {
		return Value{}, err
	}
	dk, v, _, err := parseFrame(buf)
	if err != nil {
		return Value{}, err
	}
	if dk != k {
		return Value{}, fmt.Errorf("cache: frame at off=%d holds a different key", ref.off)
	}
	return v, nil
}

// Insert appends a record and indexes it. Inserting an existing key
// overwrites it (the WAL keeps both; replay and the index take the
// later append). The caller is responsible for only inserting
// certified, non-degraded results.
func (c *Cache) Insert(k Key, v Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cache: closed")
	}
	var err error
	c.buf, err = appendFrame(c.buf[:0], k, v)
	if err != nil {
		return err
	}
	n, err := c.f.Write(c.buf)
	if err != nil {
		// A short append leaves a torn frame; rewind so the file stays
		// frame-aligned and the next insert isn't poisoned.
		if n > 0 {
			_ = rewindWAL(c.f, c.size)
			_, _ = c.f.Seek(c.size, 0)
		}
		return err
	}
	ref := recRef{off: c.size, n: int32(len(c.buf))}
	c.size += int64(len(c.buf))
	if prev, ok := c.idx[k]; ok {
		c.live -= int64(prev.n)
	}
	c.idx[k] = ref
	c.live += int64(ref.n)
	c.hot[k] = v
	c.trimHotLocked()
	if len(c.idx) > c.opts.MaxEntries {
		c.evictLocked(len(c.idx) - c.opts.MaxEntries)
	}
	c.inserts.Add(1)
	c.insertBytes.Add(int64(len(c.buf)))
	c.cInserts.Add(1)
	c.cInsertBytes.Add(int64(len(c.buf)))
	if c.opts.Fsync == FsyncAlways {
		return c.f.Sync()
	}
	c.dirty.Store(true)
	return nil
}

// evictLocked drops n index entries. Eviction order is map-iteration
// order — effectively random sampling, which is the right shape for a
// dedup cache with no strong recency skew and costs nothing to maintain.
func (c *Cache) evictLocked(n int) {
	for k, ref := range c.idx {
		if n <= 0 {
			break
		}
		delete(c.idx, k)
		delete(c.hot, k)
		c.live -= int64(ref.n)
		n--
		c.evictions.Add(1)
		c.cEvictions.Add(1)
	}
}

// trimHotLocked bounds the hot tier the same way.
func (c *Cache) trimHotLocked() {
	over := len(c.hot) - c.opts.HotEntries
	for k := range c.hot {
		if over <= 0 {
			break
		}
		delete(c.hot, k)
		over--
	}
}

// SetLimits adjusts the RAM bounds at runtime (config hot-reload),
// evicting immediately if the new bounds are tighter.
func (c *Cache) SetLimits(maxEntries, hotEntries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxEntries > 0 {
		c.opts.MaxEntries = maxEntries
	}
	if hotEntries > 0 {
		c.opts.HotEntries = hotEntries
	}
	if over := len(c.idx) - c.opts.MaxEntries; over > 0 {
		c.evictLocked(over)
	}
	c.trimHotLocked()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	s := Stats{
		Entries:    len(c.idx),
		HotEntries: len(c.hot),
		WALBytes:   c.size,
		LiveBytes:  c.live,
	}
	c.mu.RUnlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Inserts = c.inserts.Load()
	s.InsertBytes = c.insertBytes.Load()
	s.Repairs = c.repairs.Load()
	s.Evictions = c.evictions.Load()
	s.Compactions = c.compactRun.Load()
	return s
}

// Sync forces pending appends to disk regardless of policy.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.dirty.Store(false)
	return c.f.Sync()
}

// Compact rewrites the WAL with only live (indexed) records, reclaiming
// dead bytes from overwrites and evictions. Stop-the-world: lookups and
// inserts block for the duration. Frames are copied verbatim, checksums
// and all.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cache: closed")
	}
	return c.compactLocked()
}

func (c *Cache) compactLocked() error {
	tmpPath := c.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	if _, err := tmp.WriteString(walMagic); err != nil {
		return cleanup(err)
	}
	newIdx := make(map[Key]recRef, len(c.idx))
	off := int64(len(walMagic))
	frame := make([]byte, 0, 4096)
	for k, ref := range c.idx {
		if int64(cap(frame)) < int64(ref.n) {
			frame = make([]byte, ref.n)
		}
		frame = frame[:ref.n]
		if _, err := c.f.ReadAt(frame, ref.off); err != nil {
			return cleanup(err)
		}
		if _, err := tmp.Write(frame); err != nil {
			return cleanup(err)
		}
		newIdx[k] = recRef{off: off, n: ref.n}
		off += int64(ref.n)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpPath, c.path); err != nil {
		return cleanup(err)
	}
	// tmp's descriptor now refers to the file installed at c.path, and
	// its write offset already sits at off (every byte went through
	// sequential Writes). No failure path may run past the rename: the
	// descriptor is live now, and cleanup() would close it out from
	// under the cache.
	old := c.f
	c.f, c.idx, c.size, c.live = tmp, newIdx, off, off-int64(len(walMagic))
	old.Close()
	c.compactRun.Add(1)
	obs.Flight().Recordf("cache", "", "compacted WAL to %d bytes (%d records)", off, len(newIdx))
	return nil
}

// syncLoop is the FsyncInterval background ticker.
func (c *Cache) syncLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if c.dirty.Swap(false) {
				c.mu.RLock()
				if !c.closed {
					c.f.Sync()
				}
				c.mu.RUnlock()
			}
		}
	}
}

// compactLoop triggers compaction when dead bytes dominate live ones and
// the file is big enough to be worth rewriting.
func (c *Cache) compactLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			if !c.closed && c.size > c.opts.MinCompactBytes {
				dead := c.size - int64(len(walMagic)) - c.live
				if dead > c.live {
					if err := c.compactLocked(); err != nil {
						obs.Flight().Recordf("cache", "", "background compaction failed: %v", err)
					}
				}
			}
			c.mu.Unlock()
		}
	}
}

// Close stops background work, syncs pending appends, and releases the
// file. Further Lookups miss; further Inserts fail.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.opts.Fsync != FsyncNever || c.dirty.Load() {
		err = c.f.Sync()
	}
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.idx, c.hot = nil, nil
	return err
}
