package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The on-disk write-ahead log. The file is append-only: an 8-byte magic
// header followed by length-prefixed, checksummed records —
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// all little-endian. The payload is the versioned key/value encoding
// below. A record is durable iff its full frame made it to disk with a
// matching checksum; startup repair scans from the header, stops at the
// first torn or corrupt frame, and truncates the file there, so a
// kill -9 mid-append (or a torn sector) costs at most the tail records,
// never serves garbage, and never poisons later appends.

// walMagic identifies (and versions) the file format; bump the trailing
// digits on any incompatible change to the record encoding or to
// seq.DigestSeq (whose values are baked into every stored key).
const walMagic = "PIMNWC1\n"

// recordVersion is the payload encoding version byte.
const recordVersion = 1

// maxRecordBytes bounds one record's payload: a corrupt length prefix
// must not provoke a gigabyte allocation. 16 MiB comfortably covers the
// longest CIGAR any supported pair can produce.
const maxRecordBytes = 16 << 20

// frameHeaderBytes is the length + checksum prefix of every record.
const frameHeaderBytes = 8

// Frame parse errors. errTornFrame means the buffer ends before the
// frame does (a torn append — expected after a crash); the others mean
// the bytes are positively wrong (bit rot, overwrite, format drift).
var (
	errTornFrame    = errors.New("cache: torn record frame")
	errBadChecksum  = errors.New("cache: record checksum mismatch")
	errBadRecord    = errors.New("cache: malformed record payload")
	errRecordTooBig = errors.New("cache: record exceeds the size bound")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes one record onto dst and returns the grown buffer.
// It fails (leaving dst's contents unspecified) when a variable-length
// field exceeds its encoding's bounds.
func appendFrame(dst []byte, k Key, v Value) ([]byte, error) {
	if len(v.Status) > 0xff || len(v.Provenance) > 0xff {
		return dst, fmt.Errorf("%w: status/provenance over 255 bytes", errBadRecord)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	p := len(dst)                             // payload start

	dst = append(dst, recordVersion)
	var u [8]byte
	le64 := func(x uint64) {
		binary.LittleEndian.PutUint64(u[:], x)
		dst = append(dst, u[:8]...)
	}
	le32 := func(x uint32) {
		binary.LittleEndian.PutUint32(u[:4], x)
		dst = append(dst, u[:4]...)
	}
	le64(k.A.Hi)
	le64(k.A.Lo)
	le64(k.B.Hi)
	le64(k.B.Lo)
	le32(uint32(k.Params.Match))
	le32(uint32(k.Params.Mismatch))
	le32(uint32(k.Params.GapOpen))
	le32(uint32(k.Params.GapExt))
	le32(uint32(k.Band))
	le32(uint32(k.MaxBand))
	le32(uint32(k.Lanes))
	dst = append(dst, k.Flags)
	le32(uint32(v.Score))
	if v.InBand {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = append(dst, byte(len(v.Status)))
	dst = append(dst, v.Status...)
	dst = append(dst, byte(len(v.Provenance)))
	dst = append(dst, v.Provenance...)
	le32(uint32(len(v.Cigar)))
	dst = append(dst, v.Cigar...)

	payload := dst[p:]
	if len(payload) > maxRecordBytes {
		return dst[:start], errRecordTooBig
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// parseFrame decodes the frame at the start of buf, returning the frame's
// total size in bytes. errTornFrame means buf is a prefix of a valid-
// so-far frame; any other error means the frame is corrupt.
func parseFrame(buf []byte) (k Key, v Value, frameLen int, err error) {
	if len(buf) < frameHeaderBytes {
		return k, v, 0, errTornFrame
	}
	payLen := int(binary.LittleEndian.Uint32(buf))
	if payLen > maxRecordBytes {
		return k, v, 0, errRecordTooBig
	}
	sum := binary.LittleEndian.Uint32(buf[4:])
	if len(buf) < frameHeaderBytes+payLen {
		return k, v, 0, errTornFrame
	}
	payload := buf[frameHeaderBytes : frameHeaderBytes+payLen]
	if crc32.Checksum(payload, castagnoli) != sum {
		return k, v, 0, errBadChecksum
	}
	k, v, err = decodePayload(payload)
	if err != nil {
		return k, v, 0, err
	}
	return k, v, frameHeaderBytes + payLen, nil
}

// decodePayload decodes one checksum-validated payload. It is strict:
// short fields, an unknown version, or trailing bytes are all errBadRecord
// — a checksummed payload that still fails structurally indicates format
// drift, and serving a half-decoded result would be worse than a miss.
func decodePayload(b []byte) (k Key, v Value, err error) {
	bad := func(what string) (Key, Value, error) {
		return Key{}, Value{}, fmt.Errorf("%w: %s", errBadRecord, what)
	}
	if len(b) < 1 || b[0] != recordVersion {
		return bad("version byte")
	}
	b = b[1:]
	need := func(n int) bool { return len(b) >= n }
	u64 := func() uint64 {
		x := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return x
	}
	i32 := func() int32 {
		x := int32(binary.LittleEndian.Uint32(b))
		b = b[4:]
		return x
	}
	// Fixed section: 4 digest words, 4 params, band/maxband/lanes, flags,
	// score, in-band.
	if !need(4*8 + 7*4 + 1 + 4 + 1) {
		return bad("fixed section")
	}
	k.A.Hi, k.A.Lo = u64(), u64()
	k.B.Hi, k.B.Lo = u64(), u64()
	k.Params.Match, k.Params.Mismatch = i32(), i32()
	k.Params.GapOpen, k.Params.GapExt = i32(), i32()
	k.Band, k.MaxBand, k.Lanes = i32(), i32(), i32()
	k.Flags = b[0]
	b = b[1:]
	v.Score = i32()
	switch b[0] {
	case 0:
	case 1:
		v.InBand = true
	default:
		return bad("in-band byte")
	}
	b = b[1:]
	str := func() (string, bool) {
		if len(b) < 1 {
			return "", false
		}
		n := int(b[0])
		if len(b) < 1+n {
			return "", false
		}
		s := string(b[1 : 1+n])
		b = b[1+n:]
		return s, true
	}
	var ok bool
	if v.Status, ok = str(); !ok {
		return bad("status")
	}
	if v.Provenance, ok = str(); !ok {
		return bad("provenance")
	}
	if !need(4) {
		return bad("cigar length")
	}
	n := int(uint32(i32()))
	if n > len(b) {
		return bad("cigar")
	}
	if n > 0 {
		v.Cigar = append([]byte(nil), b[:n]...)
	}
	b = b[n:]
	if len(b) != 0 {
		return bad("trailing bytes")
	}
	return k, v, nil
}

// recRef locates one live record's frame inside the WAL.
type recRef struct {
	off int64
	n   int32
}

// openWAL opens (or creates) the log file and replays it into the index
// via add, truncating at the first torn or corrupt record. It returns
// the file positioned for appends, the validated size, and how many
// repairs (truncations) were performed.
func openWAL(path string, add func(Key, Value, recRef)) (f *os.File, size int64, repairs int, err error) {
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	switch {
	case st.Size() == 0:
		if _, err = f.WriteString(walMagic); err != nil {
			return nil, 0, 0, err
		}
		return f, int64(len(walMagic)), 0, nil
	case st.Size() < int64(len(walMagic)):
		// A crash between create and header write: rebuild the header.
		if err = rewindWAL(f, 0); err != nil {
			return nil, 0, 0, err
		}
		if _, err = f.WriteString(walMagic); err != nil {
			return nil, 0, 0, err
		}
		return f, int64(len(walMagic)), 1, nil
	}
	hdr := make([]byte, len(walMagic))
	if _, err = io.ReadFull(f, hdr); err != nil {
		return nil, 0, 0, err
	}
	if string(hdr) != walMagic {
		// Wrong magic means the file is not (this version of) a cache WAL.
		// Refusing beats repairing: truncating an operator's unrelated file
		// to 8 bytes would be data loss, not recovery.
		return nil, 0, 0, fmt.Errorf("cache: %s is not a result-cache WAL (bad magic)", path)
	}
	size, repairs, err = replayWAL(f, st.Size(), add)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, err = f.Seek(size, io.SeekStart); err != nil {
		return nil, 0, 0, err
	}
	return f, size, repairs, nil
}

// replayWAL scans records from just past the header, feeding valid ones
// to add. On the first torn or corrupt frame it truncates the file to the
// last valid boundary and stops — everything past a bad frame is
// unreachable by construction (frames carry no resync marker), and a
// truncated tail is re-earned by recomputation, which is always safe.
func replayWAL(f *os.File, fileSize int64, add func(Key, Value, recRef)) (size int64, repairs int, err error) {
	off := int64(len(walMagic))
	buf := make([]byte, 0, 1<<20)
	// Read the whole tail in chunks, parsing frames as they complete.
	// (Records are bounded by maxRecordBytes, so the carry buffer is too.)
	const chunk = 1 << 20
	tmp := make([]byte, chunk)
	pos := off // file offset of buf[0]
	for {
		n, rerr := f.ReadAt(tmp, pos+int64(len(buf)))
		buf = append(buf, tmp[:n]...)
		for {
			k, v, fl, perr := parseFrame(buf)
			if perr == errTornFrame {
				break
			}
			if perr != nil {
				// Corrupt: truncate here and stop the replay.
				if terr := rewindWAL(f, pos); terr != nil {
					return 0, 0, terr
				}
				return pos, 1, nil
			}
			add(k, v, recRef{off: pos, n: int32(fl)})
			pos += int64(fl)
			buf = buf[fl:]
		}
		if rerr == io.EOF || pos+int64(len(buf)) >= fileSize {
			break
		}
		if rerr != nil {
			return 0, 0, rerr
		}
	}
	if len(buf) > 0 {
		// Torn tail: the file ends mid-frame.
		if terr := rewindWAL(f, pos); terr != nil {
			return 0, 0, terr
		}
		return pos, 1, nil
	}
	return pos, 0, nil
}

// rewindWAL truncates the file to size and syncs the truncation, so a
// repaired boundary survives the next crash too.
func rewindWAL(f *os.File, size int64) error {
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}
