// Package obs is the run-level observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) snapshot-exportable as
// Prometheus text and JSON, wall-clock pipeline spans, a Chrome
// trace-event exporter for Perfetto/chrome://tracing, a leveled logger
// with an optional slog-style JSON mode, request-scoped trace IDs
// carried via context.Context, and a bounded flight recorder of recent
// notable events. It is dependency-free (stdlib only) and designed so
// that instrumentation hooks left in hot paths cost nothing when
// disabled: with no default registry, tracer or flight recorder
// installed every hook resolves to a nil-receiver method that returns
// immediately — a pointer load and a branch, zero allocations (asserted
// in the package tests).
//
// The intended wiring: a command that wants metrics installs a registry
// with SetDefault(NewRegistry()) before the run and snapshots it after;
// a command that wants a trace installs SetDefaultTracer(NewTracer()) and
// exports the collected spans with Tracer.Events + WriteTraceEvents; a
// serving daemon additionally installs SetFlight(NewFlightRecorder(n))
// and stamps each request's trace ID into its context with WithTraceID.
// Library code never checks flags — it calls Default()/StartSpan/Flight
// unconditionally.
package obs

import "sync/atomic"

var (
	defaultRegistry atomic.Pointer[Registry]
	defaultTracer   atomic.Pointer[Tracer]
)

// Default returns the installed metrics registry, or nil when metrics are
// disabled. All Registry methods are nil-safe, so callers chain without
// checking: obs.Default().Counter("x").Add(1).
func Default() *Registry { return defaultRegistry.Load() }

// SetDefault installs (or, with nil, removes) the process-wide registry.
func SetDefault(r *Registry) { defaultRegistry.Store(r) }

// DefaultTracer returns the installed tracer, or nil when tracing is
// disabled.
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetDefaultTracer installs (or, with nil, removes) the process-wide
// tracer.
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// StartSpan opens a root span on the default tracer. It returns nil (a
// valid no-op span) when tracing is disabled.
func StartSpan(name string) *Span { return DefaultTracer().Start(name, nil) }
