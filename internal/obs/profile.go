package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles enables pprof profiling for the life of a command run:
// cpuPath receives a CPU profile sampled from now until the returned stop
// function runs, memPath receives an allocation profile snapshotted at
// stop time (after a final GC, so it reflects live heap plus cumulative
// allocation counters). Either path may be empty to disable that profile.
// The stop function is idempotent; commands with os.Exit error paths call
// it before exiting and also defer it:
//
//	stop, err := obs.StartProfiles(*cpuprofile, *memprofile)
//	if err != nil { return err }
//	defer stop()
//
// These are the measurement hooks behind the hot-path engineering work:
// `-cpuprofile` shows where the anti-diagonal engine spends its cycles,
// `-memprofile` proves the scratch arenas hold steady-state allocations
// at zero.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				Logf("closing CPU profile: %v", err)
			} else {
				Logf("CPU profile written to %s", cpuPath)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				Logf("-memprofile: %v", err)
				return
			}
			runtime.GC() // materialise the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				Logf("writing heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				Logf("closing heap profile: %v", err)
			} else {
				Logf("heap profile written to %s", memPath)
			}
		}
	}, nil
}
