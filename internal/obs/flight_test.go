package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestFlightRecorderWraparoundConcurrent hammers a small ring from many
// writers and checks the wraparound invariants: the total count is exact,
// the ring retains precisely the last Cap() sequence numbers (the slot
// guard must keep every slot monotone — a slow writer that lost the race
// cannot resurrect an older event over a newer one), and the snapshot
// comes back oldest first.
func TestFlightRecorderWraparoundConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 500
		capacity  = 16
	)
	f := NewFlightRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record("test", "t-wrap", "event")
			}
		}()
	}
	wg.Wait()

	const total = writers * perWriter
	if got := f.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	evs := f.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("snapshot holds %d events, want the full ring of %d", len(evs), capacity)
	}
	// Monotone wraparound: the survivors are exactly the last `capacity`
	// sequence numbers, in order.
	for i, ev := range evs {
		want := uint64(total - capacity + i)
		if ev.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (ring must retain only the newest events)", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record("kind", "tid", "msg") // must not panic
	f.Recordf("kind", "tid", "%d", 1)
	f.DumpToLog("test")
	if f.Recorded() != 0 || f.Cap() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder must report an empty ring")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Capacity int               `json:"capacity"`
		Events   []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("nil-recorder dump is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if d.Capacity != 0 || len(d.Events) != 0 {
		t.Fatalf("nil-recorder dump = %s, want an empty ring", buf.Bytes())
	}

	// The disabled hot-path hook: a nil check and a return, no allocation.
	if allocs := testing.AllocsPerRun(1000, func() {
		Flight().Record("fault", "t-0", "hot path")
	}); allocs != 0 {
		t.Fatalf("disabled flight hook allocates %.1f per call, want 0", allocs)
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record("admit", "t-1", "request admitted")
	f.Record("fault", "", "dpu 3 stalled")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Capacity int           `json:"capacity"`
		Recorded uint64        `json:"recorded"`
		Dropped  uint64        `json:"dropped"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Capacity != 4 || d.Recorded != 2 || d.Dropped != 0 || len(d.Events) != 2 {
		t.Fatalf("dump header = %+v, want capacity 4, recorded 2, dropped 0, 2 events", d)
	}
	if d.Events[0].Kind != "admit" || d.Events[0].TraceID != "t-1" {
		t.Fatalf("first event = %+v, want the admit carrying t-1", d.Events[0])
	}
	// TraceID is omitempty: the fault without one must not carry the key.
	if bytes.Count(buf.Bytes(), []byte(`"trace_id"`)) != 1 {
		t.Fatalf("dump should carry exactly one trace_id field:\n%s", buf.Bytes())
	}
}
