package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one entry of the Chrome trace-event JSON array format, the
// input Perfetto and chrome://tracing load directly. Ts and Dur are in
// microseconds. Ph "X" is a complete slice; ph "M" is metadata (process
// and thread names).
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ProcessName builds the ph "M" metadata event naming a pid's track.
func ProcessName(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}}
}

// ThreadName builds the ph "M" metadata event naming a (pid, tid) lane.
func ThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

// WriteTraceEvents writes the events as one JSON array — the whole trace
// file. Load the result via Perfetto's "Open trace file" or
// chrome://tracing.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
