package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one entry of the Chrome trace-event JSON array format, the
// input Perfetto and chrome://tracing load directly. Ts and Dur are in
// microseconds. Ph "X" is a complete slice; ph "M" is metadata (process
// and thread names); ph "i" is an instant event whose S field scopes the
// marker ("t" thread, "p" process, "g" global).
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Instant builds a ph "i" thread-scoped instant event (a point marker on
// a lane), ts in microseconds.
func Instant(name string, ts float64, pid, tid int, args map[string]any) TraceEvent {
	return TraceEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid,
		S: "t", Args: args}
}

// ProcessName builds the ph "M" metadata event naming a pid's track.
func ProcessName(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}}
}

// ThreadName builds the ph "M" metadata event naming a (pid, tid) lane.
func ThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

// WriteTraceEvents writes the events as one JSON array — the whole trace
// file. Load the result via Perfetto's "Open trace file" or
// chrome://tracing.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
