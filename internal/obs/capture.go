package obs

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrCaptureBusy rejects a trace capture while another one is running:
// the default tracer is process-wide state, so windows cannot overlap.
var ErrCaptureBusy = errors.New("obs: a trace capture is already running")

var captureBusy atomic.Bool

// CaptureTrace installs a fresh default tracer for the given window,
// then restores whatever tracer was installed before and returns the
// spans the window collected as Chrome trace events (pid 0, the lane
// convention of Tracer.Events) — the /debug/trace?sec=N implementation:
// point Perfetto at a live daemon without restarting it with -trace-out.
// Cancelling ctx ends the window early with the events gathered so far.
// Only spans that both start and finish inside the window appear; a
// span still open when the window closes is dropped by Events.
func CaptureTrace(ctx context.Context, window time.Duration) ([]TraceEvent, error) {
	if !captureBusy.CompareAndSwap(false, true) {
		return nil, ErrCaptureBusy
	}
	defer captureBusy.Store(false)
	prev := DefaultTracer()
	t := NewTracer()
	SetDefaultTracer(t)
	timer := time.NewTimer(window)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
	SetDefaultTracer(prev)
	return t.Events(0), nil
}
