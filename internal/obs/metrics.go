package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Lookup is a read-locked map access; the
// update paths (Add/Set/Observe) are lock-free atomics, safe for the
// host's batch-parallel goroutines. A nil *Registry is the disabled state:
// every method returns a nil metric whose methods no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending upper-bound boundaries (an implicit +Inf bucket is
// appended). Later calls ignore the buckets argument.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the value. No-op on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reads the gauge; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds,
// ascending, with an implicit +Inf overflow bucket) and tracks sum/count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value. No-op on a nil receiver; allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count is the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the sum of observed values; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramBucket is one cumulative bucket of a snapshot.
type HistogramBucket struct {
	LE    float64 `json:"le"` // upper bound; +Inf for the overflow bucket
	Count int64   `json:"count"`
}

// MarshalJSON emits the bucket with the +Inf overflow bound clamped to
// the largest finite float64: JSON has no Inf literal, and the stock
// encoder errors on the raw value — so any handler that json.Marshals a
// Snapshot (not just the two exporters that used to hand-clamp) stays
// safe.
func (b HistogramBucket) MarshalJSON() ([]byte, error) {
	le := b.LE
	if math.IsInf(le, 1) {
		le = math.MaxFloat64
	}
	return json.Marshal(struct {
		LE    float64 `json:"le"`
		Count int64   `json:"count"`
	}{le, b.Count})
}

// HistogramSnapshot is a consistent-enough point-in-time histogram copy.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the cumulative
// buckets by linear interpolation inside the bucket holding the target
// rank — the standard fixed-bucket histogram estimate. An estimate
// landing in the +Inf overflow bucket returns the largest finite bound
// (the histogram cannot resolve beyond it). NaN on an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	lower := 0.0
	var prev int64
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) || b.Count == prev {
				return lower
			}
			return lower + (b.LE-lower)*(rank-float64(prev))/float64(b.Count-prev)
		}
		lower, prev = b.LE, b.Count
	}
	return lower
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. Nil-safe (empty result).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, HistogramBucket{LE: le, Count: cum})
		}
		s.Histograms[name] = hs
	}
	return s
}

// splitPromName splits a registry metric name into its Prometheus base
// name and label body. Labelled series are registered under their full
// series name — e.g. `alignd_stage_seconds{stage="kernel"}` — so the
// registry itself stays a flat map; the exposition writer peels the
// labels back off to place `# TYPE` comments on the base name and to
// merge the `le` label into labelled histogram buckets.
func splitPromName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, metrics sorted by name for determinism. Series of one labelled
// family (same base name) share a single `# TYPE` comment.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	typed := ""
	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitPromName(name)
		if base != typed {
			typed = base
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	typed = ""
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitPromName(name)
		if base != typed {
			typed = base
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	typed = ""
	for _, name := range histNames {
		h := s.Histograms[name]
		base, labels := splitPromName(name)
		if base != typed {
			typed = base
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
		}
		sep := ""
		if labels != "" {
			sep = labels + ","
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = formatFloat(b.LE)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", base, sep, le, b.Count); err != nil {
				return err
			}
		}
		sumName, countName := base+"_sum", base+"_count"
		if labels != "" {
			sumName += "{" + labels + "}"
			countName += "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n", sumName, formatFloat(h.Sum), countName, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON. The +Inf histogram
// bucket is emitted with le set to the largest finite float64 —
// HistogramBucket.MarshalJSON owns the clamp.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
