package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is a bounded in-memory ring of the last N notable
// events (admissions, rejections, faults, escalations, abandonments,
// slow requests): always on, cheap enough to leave recording in
// production, and dumped on demand (/debug/flight) or automatically when
// something goes irrecoverably wrong — the same idea as an aircraft's
// flight data recorder. It deliberately records *events*, not samples:
// when a request is abandoned at 3 a.m., the ring holds the faults and
// escalations that led up to it.
//
// Concurrency: writers claim a slot with one atomic increment and then
// copy the event under that slot's own mutex, so concurrent writers only
// contend when they hash to the same slot (ring capacity apart, or a
// full wrap behind). A slot guard keeps wraparound monotone: a slot only
// ever moves to a higher sequence number, so a slow writer that lost the
// race cannot resurrect an older event over a newer one. A nil
// *FlightRecorder is the disabled state — Record on it is a nil check
// and a return, zero allocations, which is what lets the hooks stay in
// the hot path unconditionally.

// FlightEvent is one recorded notable event.
type FlightEvent struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	TraceID string    `json:"trace_id,omitempty"`
	Msg     string    `json:"msg"`
}

type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
	ok bool
}

// FlightRecorder is the bounded event ring. All methods are nil-safe.
type FlightRecorder struct {
	slots []flightSlot
	seq   atomic.Uint64
}

// DefaultFlightEvents is the ring capacity when none is given.
const DefaultFlightEvents = 256

// NewFlightRecorder creates a ring holding the most recent n events
// (n <= 0 means DefaultFlightEvents).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{slots: make([]flightSlot, n)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Allocation-free; no-op on a nil recorder.
func (f *FlightRecorder) Record(kind, traceID, msg string) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1) - 1
	s := &f.slots[seq%uint64(len(f.slots))]
	s.mu.Lock()
	if !s.ok || seq > s.ev.Seq {
		s.ev = FlightEvent{Seq: seq, Time: time.Now(), Kind: kind, TraceID: traceID, Msg: msg}
		s.ok = true
	}
	s.mu.Unlock()
}

// Recordf is Record with a formatted message. The nil check runs before
// any formatting, so a disabled recorder costs nothing beyond the call.
func (f *FlightRecorder) Recordf(kind, traceID, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(kind, traceID, fmt.Sprintf(format, args...))
}

// Recorded is the total number of events ever recorded (not the ring
// occupancy); 0 on a nil recorder.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Cap is the ring capacity; 0 on a nil recorder.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot copies the buffered events, oldest first. Nil-safe (nil
// result).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	evs := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.ok {
			evs = append(evs, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// flightDump is the JSON shape of a flight-recorder dump.
type flightDump struct {
	Capacity int           `json:"capacity"`
	Recorded uint64        `json:"recorded"`
	Dropped  uint64        `json:"dropped"` // overwritten by wraparound
	Events   []FlightEvent `json:"events"`
}

// WriteJSON dumps the ring as indented JSON (the /debug/flight payload).
// Nil-safe: a disabled recorder dumps an empty ring.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	evs := f.Snapshot()
	if evs == nil {
		evs = []FlightEvent{}
	}
	d := flightDump{Capacity: f.Cap(), Recorded: f.Recorded(), Events: evs}
	d.Dropped = d.Recorded - uint64(len(evs))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DumpToLog writes every buffered event through the logger (stderr by
// default), oldest first — the automatic dump taken when a request is
// abandoned, so the events leading up to the failure land next to the
// failure itself. Nil-safe.
func (f *FlightRecorder) DumpToLog(reason string) {
	if f == nil {
		return
	}
	evs := f.Snapshot()
	Info("flight-recorder dump", "reason", reason,
		"events", len(evs), "recorded", f.Recorded())
	for _, ev := range evs {
		Info("flight", "seq", ev.Seq,
			"at", ev.Time.UTC().Format(time.RFC3339Nano),
			"kind", ev.Kind, "trace_id", ev.TraceID, "msg", ev.Msg)
	}
}

var defaultFlight atomic.Pointer[FlightRecorder]

// Flight returns the installed process-wide flight recorder, or nil when
// none is installed. All FlightRecorder methods are nil-safe, so callers
// chain without checking: obs.Flight().Record("fault", tid, "...").
func Flight() *FlightRecorder { return defaultFlight.Load() }

// SetFlight installs (or, with nil, removes) the process-wide recorder.
func SetFlight(f *FlightRecorder) { defaultFlight.Store(f) }
