package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["latency"]

	cases := []struct {
		q, want float64
	}{
		{0, 0},     // rank 0 resolves to the lower edge of the first bucket
		{0.5, 1.5}, // rank 1.5 interpolates within the (1, 2] bucket
		{1, 4},     // rank 3 interpolates to the top of the (2, 4] bucket
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want clamp to Quantile(1) = %v", got, s.Quantile(1))
	}
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) must be NaN")
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{1, 2, 4})
	h.Observe(100) // lands in +Inf; the quantile cannot invent a bound
	s := r.Snapshot().Histograms["latency"]
	if got := s.Quantile(0.99); got != 4 {
		t.Errorf("overflow-bucket Quantile(0.99) = %v, want the largest finite bound 4", got)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{1, 2, 4})
	h.Observe(1.5)
	s := r.Snapshot().Histograms["latency"]
	// q>0 quantiles of a one-sample histogram resolve inside the sample's
	// bucket (1, 2]; rank 0 degenerates to the histogram's lower edge.
	if got := s.Quantile(0); got != 0 {
		t.Errorf("single-sample Quantile(0) = %v, want the histogram's lower edge 0", got)
	}
	for _, q := range []float64{0.5, 1} {
		got := s.Quantile(q)
		if got <= 1 || got > 2 {
			t.Errorf("single-sample Quantile(%v) = %v, want within the sample's bucket (1, 2]", q, got)
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("latency", []float64{1, 2})
	s := r.Snapshot().Histograms["latency"]
	if got := s.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty-histogram Quantile = %v, want NaN", got)
	}
	var zero HistogramSnapshot
	if got := zero.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("zero-value snapshot Quantile = %v, want NaN", got)
	}
}
