package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// Request-scoped trace identity. A serving frontend mints (or accepts)
// one trace ID per request and threads it through context.Context into
// the dispatch pipeline; everything the request touches — structured log
// lines, flight-recorder events, wall-clock spans, modelled Perfetto
// slices, streamed results — carries the same ID, so one slow request
// can be followed lane-by-lane across the whole stack.
//
// The ID travels as a plain string context value: storing it allocates
// once per request (context.WithValue), reading it back with TraceIDFrom
// is allocation-free — the guarantee that lets library code consult the
// trace ID on paths that must stay zero-alloc.

type traceIDKey struct{}

var traceIDFallback atomic.Uint64

// NewTraceID mints a fresh 16-hex-digit trace ID. It never fails: if the
// system's entropy source is unavailable it degrades to a
// timestamp+counter ID that is still unique within the process.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t" + strconv.FormatInt(time.Now().UnixNano(), 16) +
			"-" + strconv.FormatUint(traceIDFallback.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID. An empty ID
// returns ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from a context, "" when absent (or
// when ctx is nil). Allocation-free.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
