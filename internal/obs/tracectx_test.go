package obs

import (
	"context"
	"testing"
)

func TestTraceContext(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == "" || b == "" || a == b {
		t.Fatalf("NewTraceID must mint unique non-empty IDs, got %q and %q", a, b)
	}
	ctx := WithTraceID(context.Background(), "t-123")
	if got := TraceIDFrom(ctx); got != "t-123" {
		t.Fatalf("TraceIDFrom = %q, want t-123", got)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("TraceIDFrom(bare ctx) = %q, want empty", got)
	}
	if got := TraceIDFrom(nil); got != "" {
		t.Fatalf("TraceIDFrom(nil) = %q, want empty", got)
	}
	if got := WithTraceID(ctx, ""); got != ctx {
		t.Fatal("WithTraceID with an empty ID must return the context unchanged")
	}

	// The read side sits on hot paths (NewSession fills Config.TraceID
	// from the context); it must not allocate.
	if allocs := testing.AllocsPerRun(1000, func() {
		if TraceIDFrom(ctx) == "" {
			t.Error("lost the trace ID")
		}
	}); allocs != 0 {
		t.Fatalf("TraceIDFrom allocates %.1f per call, want 0", allocs)
	}
}
