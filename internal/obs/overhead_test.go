package obs_test

// The no-op overhead guarantee: every instrumentation hook left in the
// simulation hot loops (kernel per-alignment counters, simulator stat
// publication, host pipeline spans) must cost nothing when observability
// is disabled — a nil pointer load and a branch, zero allocations. The
// test below exercises exactly the hook sequence the kernel runs per
// alignment and asserts 0 allocs; the paired benchmarks compare a real
// DPU kernel batch with instrumentation disabled vs enabled.

import (
	"math/rand"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// hookPath is the per-alignment instrumentation sequence from
// kernel.alignOne plus the per-run sequence from kernel.Run and the span
// hooks from host.runBatch, with whatever registry/tracer is installed.
func hookPath() {
	if reg := obs.Default(); reg != nil {
		reg.Counter("pim_alignments_total").Add(1)
		reg.Counter("pim_cells_total").Add(12345)
		reg.Counter("pim_steps_total").Add(100)
		reg.Histogram("pim_band_width_cells", bandBuckets).Observe(123.45)
		reg.Histogram("pim_dpu_utilization", utilBuckets).Observe(0.97)
	}
	sp := obs.StartSpan("host.batch")
	sp.SetAttrInt("batch", 1)
	child := sp.Child("host.kernel")
	child.End()
	sp.End()
}

var (
	bandBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	utilBuckets = []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
)

func TestNilSinkHookPathZeroAllocs(t *testing.T) {
	obs.SetDefault(nil)
	obs.SetDefaultTracer(nil)
	if allocs := testing.AllocsPerRun(1000, hookPath); allocs != 0 {
		t.Fatalf("disabled hook path allocates %.1f times per alignment, want 0", allocs)
	}
}

func TestEnabledHookPathRecords(t *testing.T) {
	reg, tr := obs.NewRegistry(), obs.NewTracer()
	obs.SetDefault(reg)
	obs.SetDefaultTracer(tr)
	defer obs.SetDefault(nil)
	defer obs.SetDefaultTracer(nil)
	hookPath()
	if reg.Counter("pim_cells_total").Value() != 12345 {
		t.Fatal("enabled hook path did not record the counter")
	}
	if len(tr.Events(0)) != 2 {
		t.Fatal("enabled hook path did not record the spans")
	}
}

// kernelBatch runs one staged DPU kernel batch, the workload both
// overhead benchmarks share.
func kernelBatch(b *testing.B, rng *rand.Rand, kcfg kernel.Config) {
	b.Helper()
	b.StopTimer()
	d := kcfg.PIM.NewDPU(0)
	pairs := make([]kernel.Pair, 12)
	for j := range pairs {
		a := seq.Random(rng, 1000)
		q := seq.UniformErrors(0.05).Apply(rng, a)
		sp, err := kernel.StagePair(d, j, a, q)
		if err != nil {
			b.Fatal(err)
		}
		pairs[j] = sp
	}
	b.StartTimer()
	if _, err := kernel.Run(d, kcfg, pairs); err != nil {
		b.Fatal(err)
	}
}

func benchKernelConfig() kernel.Config {
	return kernel.Config{
		Geometry:  kernel.DefaultGeometry(),
		Band:      128,
		Params:    core.DefaultParams(),
		Costs:     pim.Asm,
		Traceback: true,
		PIM:       pim.DefaultConfig(),
	}
}

// BenchmarkKernelNilSink is the instrumented-but-disabled baseline: the
// hooks are compiled in, observability is off. Compare with
// BenchmarkKernelInstrumented; the delta is the price of turning
// metrics+tracing on, and NilSink must stay within noise of the
// pre-instrumentation kernel benchmark (BenchmarkDPUKernelBatch).
func BenchmarkKernelNilSink(b *testing.B) {
	obs.SetDefault(nil)
	obs.SetDefaultTracer(nil)
	kcfg := benchKernelConfig()
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernelBatch(b, rng, kcfg)
	}
}

func BenchmarkKernelInstrumented(b *testing.B) {
	obs.SetDefault(obs.NewRegistry())
	obs.SetDefaultTracer(obs.NewTracer())
	defer obs.SetDefault(nil)
	defer obs.SetDefaultTracer(nil)
	kcfg := benchKernelConfig()
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernelBatch(b, rng, kcfg)
	}
}

// BenchmarkHookPathNilSink isolates the disabled hook sequence itself:
// expect ~ns/op and 0 allocs/op.
func BenchmarkHookPathNilSink(b *testing.B) {
	obs.SetDefault(nil)
	obs.SetDefaultTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hookPath()
	}
}
