package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// resetLogger restores the logger's process-wide state after a test.
func resetLogger() {
	SetLogOutput(os.Stderr)
	SetLogPrefix("")
	SetLogJSON(false)
	SetVerbosity(0)
}

func captureLog(t *testing.T, json bool, fn func()) string {
	t.Helper()
	var buf bytes.Buffer
	SetLogOutput(&buf)
	SetLogPrefix("test")
	SetLogJSON(json)
	defer resetLogger()
	fn()
	return buf.String()
}

func TestLogJSONSchema(t *testing.T) {
	out := captureLog(t, true, func() {
		Info("slow request", "trace_id", "t-123", "pairs", 40,
			"elapsed_sec", 0.25, "ok", true, "wait", 3*time.Millisecond)
	})
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("JSON mode emitted an unparsable line: %v\n%s", err, out)
	}
	if line["level"] != "info" || line["component"] != "test" || line["msg"] != "slow request" {
		t.Fatalf("fixed header wrong: %v", line)
	}
	if _, err := time.Parse(time.RFC3339Nano, line["ts"].(string)); err != nil {
		t.Fatalf("ts is not RFC3339Nano: %v", err)
	}
	if line["trace_id"] != "t-123" || line["pairs"] != float64(40) ||
		line["elapsed_sec"] != 0.25 || line["ok"] != true || line["wait"] != "3ms" {
		t.Fatalf("kv fields wrong: %v", line)
	}
}

func TestLogJSONBadFields(t *testing.T) {
	// Caller bugs surface in the output rather than breaking the line:
	// non-string keys become !BADKEY<i>, a trailing odd value !BADKV, and
	// NaN (no JSON literal) is stringified.
	out := captureLog(t, true, func() {
		Info("oops", 42, "v1", "nan", math.NaN(), "dangling")
	})
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("bad fields broke the JSON line: %v\n%s", err, out)
	}
	if line["!BADKEY0"] != "v1" || line["nan"] != "NaN" || line["!BADKV"] != "dangling" {
		t.Fatalf("bad-field handling wrong: %v", line)
	}
}

func TestLogTextMode(t *testing.T) {
	out := captureLog(t, false, func() {
		Info("cpu rescue", "pairs", 3, "note", "two words")
		Logf("plain %d", 7)
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if lines[0] != `test: cpu rescue pairs=3 note="two words"` {
		t.Fatalf("text rendering = %q", lines[0])
	}
	if lines[1] != "test: plain 7" {
		t.Fatalf("Logf rendering = %q", lines[1])
	}
}

// TestLogConcurrencyRaceClean drives every logger entry point and every
// setter from concurrent goroutines; the -race run of the suite is the
// assertion (the original logger read logOut and logPrefix without the
// mutex on one path).
func TestLogConcurrencyRaceClean(t *testing.T) {
	SetLogOutput(io.Discard)
	defer resetLogger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					Logf("line %d", i)
				case 1:
					Info("event", "i", i, "trace_id", "t-race")
				case 2:
					SetLogJSON(i%2 == 0)
				case 3:
					SetLogPrefix("g3")
				}
			}
		}(g)
	}
	wg.Wait()
}
