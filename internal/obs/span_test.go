package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("host.align_pairs", nil)
	root.SetAttrInt("pairs", 64)
	child := root.Child("host.balance")
	child.End()
	root.End()

	events := tr.Events(0)
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	byName := map[string]TraceEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	rootEv, ok := byName["host.align_pairs"]
	if !ok {
		t.Fatal("missing root event")
	}
	if rootEv.Ph != "X" || rootEv.Pid != 0 {
		t.Fatalf("root event = %+v", rootEv)
	}
	if rootEv.Args["pairs"] != "64" {
		t.Fatalf("root args = %v", rootEv.Args)
	}
	childEv := byName["host.balance"]
	if childEv.Tid != rootEv.Tid {
		t.Fatalf("child lane %d != root lane %d", childEv.Tid, rootEv.Tid)
	}
	if childEv.Ts < rootEv.Ts || childEv.Ts+childEv.Dur > rootEv.Ts+rootEv.Dur+1 {
		t.Fatalf("child [%v,%v] not inside root [%v,%v]",
			childEv.Ts, childEv.Ts+childEv.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
	}
}

func TestUnfinishedSpansAreSkipped(t *testing.T) {
	tr := NewTracer()
	tr.Start("open", nil) // never ended
	done := tr.Start("done", nil)
	done.End()
	events := tr.Events(0)
	if len(events) != 1 || events[0].Name != "done" {
		t.Fatalf("events = %+v, want just the finished span", events)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", nil)
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.SetAttrFloat("f", 1.5)
	c := s.Child("y")
	if c != nil {
		t.Fatal("nil span returned a child")
	}
	c.End()
	s.End()
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if ev := tr.Events(0); ev != nil {
		t.Fatalf("nil tracer events = %v", ev)
	}
}

func TestWriteTraceEvents(t *testing.T) {
	events := []TraceEvent{
		ProcessName(1, "rank 0 (modelled)"),
		{Name: "kernel", Ph: "X", Ts: 10, Dur: 5, Pid: 1, Tid: 1},
	}
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d events, want 2", len(parsed))
	}
	for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := parsed[1][key]; !ok {
			t.Errorf("event missing %q: %v", key, parsed[1])
		}
	}
	// Empty input must still be a valid (empty) JSON array.
	buf.Reset()
	if err := WriteTraceEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty trace = %q, want []", got)
	}
}

func TestDefaultRegistryAndTracerInstall(t *testing.T) {
	if Default() != nil || DefaultTracer() != nil {
		t.Fatal("defaults not nil at test start")
	}
	r, tr := NewRegistry(), NewTracer()
	SetDefault(r)
	SetDefaultTracer(tr)
	defer SetDefault(nil)
	defer SetDefaultTracer(nil)
	Default().Counter("x").Add(1)
	sp := StartSpan("s")
	if sp == nil {
		t.Fatal("StartSpan returned nil with a tracer installed")
	}
	sp.End()
	if r.Counter("x").Value() != 1 {
		t.Fatal("default registry did not record")
	}
	if len(tr.Events(0)) != 1 {
		t.Fatal("default tracer did not record")
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	SetLogPrefix("test")
	defer func() {
		SetLogOutput(os.Stderr)
		SetLogPrefix("")
		SetVerbosity(0)
	}()

	SetVerbosity(0)
	Logf("info %d", 1)
	Debugf("debug %d", 2)
	if got := buf.String(); got != "test: info 1\n" {
		t.Fatalf("level 0 output = %q", got)
	}
	buf.Reset()
	SetVerbosity(1)
	Debugf("debug %d", 3)
	if got := buf.String(); got != "test: debug 3\n" {
		t.Fatalf("level 1 output = %q", got)
	}
}
