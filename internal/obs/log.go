package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The leveled logger replaces the commands' scattered
// fmt.Fprintf(os.Stderr, ...) status lines: Logf is always-on progress
// output, Debugf only prints once SetVerbosity(1) (the -v flag) is set.
// Output defaults to stderr so it never mixes with result data on stdout.
//
// Two renderings share the same call sites. The default is the original
// human-oriented text ("tag: message key=value ..."); SetLogJSON(true)
// switches every line to a slog-style JSON object —
//
//	{"ts":"2026-08-08T12:00:00.000000001Z","level":"info",
//	 "component":"alignd","msg":"slow request","trace_id":"t-123",...}
//
// — one object per line, fields in call order after the fixed header, so
// a serving deployment can ship logs straight into a structured pipeline
// and join them on trace_id. Info/Debug carry explicit key/value fields;
// Logf/Debugf keep their printf contract and render with just the fixed
// header. All logger state (sink, prefix, format, scratch buffer) is read
// and written under one mutex, so concurrent loggers, SetLogOutput and
// SetLogJSON are race-clean and lines never interleave.

var (
	logMu     sync.Mutex
	logOut    io.Writer = os.Stderr
	logPrefix string
	logJSON   bool
	logBuf    []byte // per-line scratch, reused under logMu
	verbosity atomic.Int32
)

// SetLogOutput redirects log output (default os.Stderr).
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	logOut = w
	logMu.Unlock()
}

// SetLogPrefix sets the program tag prepended to every text line
// ("tag: ...") and carried as the "component" field of JSON lines.
func SetLogPrefix(prefix string) {
	logMu.Lock()
	logPrefix = prefix
	logMu.Unlock()
}

// SetLogJSON switches between the default text rendering and one JSON
// object per line (the structured mode serving deployments ingest).
func SetLogJSON(on bool) {
	logMu.Lock()
	logJSON = on
	logMu.Unlock()
}

// SetVerbosity sets the log level: 0 shows Logf only, >=1 adds Debugf.
func SetVerbosity(v int) { verbosity.Store(int32(v)) }

// Verbosity reports the current log level.
func Verbosity() int { return int(verbosity.Load()) }

// Logf prints one status line (level 0, always shown).
func Logf(format string, args ...any) { emit("info", fmt.Sprintf(format, args...), nil) }

// Debugf prints one diagnostic line, only at verbosity >= 1.
func Debugf(format string, args ...any) {
	if verbosity.Load() < 1 {
		return
	}
	emit("debug", fmt.Sprintf(format, args...), nil)
}

// Info prints one status line with structured key/value fields
// (alternating key, value, key, value ...). In text mode the fields
// render as trailing key=value columns; in JSON mode each becomes an
// object member after the fixed header.
func Info(msg string, kv ...any) { emit("info", msg, kv) }

// Debug is Info at verbosity >= 1.
func Debug(msg string, kv ...any) {
	if verbosity.Load() < 1 {
		return
	}
	emit("debug", msg, kv)
}

// emit renders and writes one line. The whole render happens under logMu
// so sink, prefix and format are read consistently and concurrent lines
// never interleave.
func emit(level, msg string, kv []any) {
	logMu.Lock()
	defer logMu.Unlock()
	logBuf = logBuf[:0]
	if logJSON {
		logBuf = appendJSONLine(logBuf, level, logPrefix, msg, kv)
	} else {
		logBuf = appendTextLine(logBuf, logPrefix, msg, kv)
	}
	logBuf = append(logBuf, '\n')
	logOut.Write(logBuf)
}

func appendTextLine(b []byte, prefix, msg string, kv []any) []byte {
	if prefix != "" {
		b = append(b, prefix...)
		b = append(b, ": "...)
	}
	b = append(b, msg...)
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		b = append(b, fieldKey(kv[i], i)...)
		b = append(b, '=')
		b = appendTextValue(b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		b = append(b, " !BADKV="...)
		b = appendTextValue(b, kv[len(kv)-1])
	}
	return b
}

func appendTextValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\n\"=") {
			return strconv.AppendQuote(b, x)
		}
		return append(b, x...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, x)
	case time.Duration:
		return append(b, x.String()...)
	default:
		return fmt.Appendf(b, "%v", v)
	}
}

func appendJSONLine(b []byte, level, component, msg string, kv []any) []byte {
	b = append(b, `{"ts":`...)
	b = appendJSONString(b, time.Now().UTC().Format(time.RFC3339Nano))
	b = append(b, `,"level":`...)
	b = appendJSONString(b, level)
	if component != "" {
		b = append(b, `,"component":`...)
		b = appendJSONString(b, component)
	}
	b = append(b, `,"msg":`...)
	b = appendJSONString(b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ',')
		b = appendJSONString(b, fieldKey(kv[i], i))
		b = append(b, ':')
		b = appendJSONValue(b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		b = append(b, `,"!BADKV":`...)
		b = appendJSONValue(b, kv[len(kv)-1])
	}
	return append(b, '}')
}

// fieldKey coerces one kv key to a usable string; a non-string key is a
// caller bug surfaced in the output rather than dropped.
func fieldKey(k any, i int) string {
	if s, ok := k.(string); ok && s != "" {
		return s
	}
	return "!BADKEY" + strconv.Itoa(i/2)
}

func appendJSONString(b []byte, s string) []byte {
	enc, err := json.Marshal(s)
	if err != nil { // cannot happen for a string; keep the line well-formed
		return append(b, `""`...)
	}
	return append(b, enc...)
}

func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case bool:
		return strconv.AppendBool(b, x)
	case float64:
		if x != x || x > 1.7e308 || x < -1.7e308 { // NaN/Inf have no JSON literal
			return appendJSONString(b, strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case time.Duration:
		return appendJSONString(b, x.String())
	}
	enc, err := json.Marshal(v)
	if err != nil {
		return appendJSONString(b, fmt.Sprintf("%v", v))
	}
	return append(b, enc...)
}
