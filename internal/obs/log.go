package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// The leveled logger replaces the commands' scattered
// fmt.Fprintf(os.Stderr, ...) status lines: Logf is always-on progress
// output, Debugf only prints once SetVerbosity(1) (the -v flag) is set.
// Output defaults to stderr so it never mixes with result data on stdout.

var (
	logMu     sync.Mutex
	logOut    io.Writer = os.Stderr
	logPrefix string
	verbosity atomic.Int32
)

// SetLogOutput redirects log output (default os.Stderr).
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	logOut = w
	logMu.Unlock()
}

// SetLogPrefix sets the program tag prepended to every line ("tag: ...").
func SetLogPrefix(prefix string) {
	logMu.Lock()
	logPrefix = prefix
	logMu.Unlock()
}

// SetVerbosity sets the log level: 0 shows Logf only, >=1 adds Debugf.
func SetVerbosity(v int) { verbosity.Store(int32(v)) }

// Verbosity reports the current log level.
func Verbosity() int { return int(verbosity.Load()) }

// Logf prints one status line (level 0, always shown).
func Logf(format string, args ...any) { logf(format, args...) }

// Debugf prints one diagnostic line, only at verbosity >= 1.
func Debugf(format string, args ...any) {
	if verbosity.Load() < 1 {
		return
	}
	logf(format, args...)
}

func logf(format string, args ...any) {
	logMu.Lock()
	defer logMu.Unlock()
	if logPrefix != "" {
		fmt.Fprintf(logOut, "%s: ", logPrefix)
	}
	fmt.Fprintf(logOut, format, args...)
	fmt.Fprintln(logOut)
}
