package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pim_cells_total")
	c.Add(40)
	c.Add(2)
	if got := r.Counter("pim_cells_total").Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("host_makespan_seconds")
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("gauge after Add = %v, want 1.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("width", []float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["width"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1066 {
		t.Fatalf("sum = %v, want 1066", s.Sum)
	}
	// Cumulative: le=10 -> 3 (1,5,10), le=100 -> 4, +Inf -> 5.
	want := []int64{3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(s.Buckets[2].LE, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", s.Buckets[2].LE)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(1)
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pim_cells_total").Add(1234)
	r.Gauge("host_utilization_min").Set(0.97)
	r.Histogram("pim_band_width_cells", []float64{64, 128}).Observe(100)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pim_cells_total counter\npim_cells_total 1234\n",
		"# TYPE host_utilization_min gauge\nhost_utilization_min 0.97\n",
		"# TYPE pim_band_width_cells histogram\n",
		"pim_band_width_cells_bucket{le=\"64\"} 0\n",
		"pim_band_width_cells_bucket{le=\"128\"} 1\n",
		"pim_band_width_cells_bucket{le=\"+Inf\"} 1\n",
		"pim_band_width_cells_sum 100\n",
		"pim_band_width_cells_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q; got:\n%s", want, out)
		}
	}
}

// TestWritePrometheusLabeledSeries pins the labeled-series exposition:
// a full series name like `x{label="v"}` keys the flat registry, and the
// writer splits at the brace so # TYPE names the base metric, histogram
// suffixes land before the labels, and the le label merges into the
// existing set.
func TestWritePrometheusLabeledSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`alignd_stage_seconds{stage="kernel"}`, []float64{1, 2})
	h.Observe(1.5)
	r.Counter(`reqs_total{code="429"}`).Add(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE alignd_stage_seconds histogram\n",
		"alignd_stage_seconds_bucket{stage=\"kernel\",le=\"1\"} 0\n",
		"alignd_stage_seconds_bucket{stage=\"kernel\",le=\"2\"} 1\n",
		"alignd_stage_seconds_bucket{stage=\"kernel\",le=\"+Inf\"} 1\n",
		"alignd_stage_seconds_sum{stage=\"kernel\"} 1.5\n",
		"alignd_stage_seconds_count{stage=\"kernel\"} 1\n",
		"# TYPE reqs_total counter\nreqs_total{code=\"429\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q; got:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# TYPE alignd_stage_seconds{") {
		t.Errorf("# TYPE must name the base metric, not the series:\n%s", out)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if s.Counters["a_total"] != 7 {
		t.Fatalf("round-tripped counter = %d, want 7", s.Counters["a_total"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("round-tripped histogram count = %d, want 1", s.Histograms["h"].Count)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{0.5}).Observe(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", v)
	}
	if v := r.Gauge("g").Value(); v != 8000 {
		t.Fatalf("concurrent gauge = %v, want 8000", v)
	}
	if v := r.Histogram("h", nil).Count(); v != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", v)
	}
}

// TestSnapshotMarshalsWithInfBucket pins the overflow-bucket encoding:
// a histogram snapshot keeps the raw +Inf bound in memory (Quantile
// depends on it), but json.Marshal of the whole Snapshot must succeed —
// the stock encoder errors on +Inf, and any handler that marshals a
// snapshot directly (instead of going through WriteJSON's old
// hand-clamp) used to 500 on it.
func TestSnapshotMarshalsWithInfBucket(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{0.1, 1}).Observe(5) // lands in +Inf bucket
	snap := r.Snapshot()
	h := snap.Histograms["lat"]
	if last := h.Buckets[len(h.Buckets)-1]; !math.IsInf(last.LE, 1) || last.Count != 1 {
		t.Fatalf("in-memory overflow bucket = %+v, want le=+Inf count=1", last)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("json.Marshal(Snapshot) = %v", err)
	}
	var back struct {
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	bs := back.Histograms["lat"].Buckets
	if got := bs[len(bs)-1].LE; got != math.MaxFloat64 {
		t.Fatalf("marshalled overflow bound = %g, want MaxFloat64", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}
