package obs

import (
	"strconv"
	"sync"
	"time"
)

// Tracer collects wall-clock spans over the host pipeline. Spans started
// from concurrent goroutines are safe; a span's attributes and End must be
// owned by the goroutine that started it, and Events must only be called
// after the instrumented work has finished.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	spans []*Span
}

// NewTracer creates a tracer; span timestamps are relative to this moment.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Start opens a span. On a nil tracer it returns nil, a valid no-op span
// (no clock read, no allocation). The parent may be nil (a root span,
// rendered on its own trace lane) or a span from any goroutine.
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, Name: name, parent: parent, start: time.Now()}
	t.mu.Lock()
	s.id = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed region of the pipeline. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	parent *Span
	id     int
	Name   string
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// Attr is one span attribute.
type Attr struct{ Key, Value string }

// Child opens a sub-span. Returns nil when the receiver is nil, so a
// disabled root span disables its whole subtree for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.Start(name, s)
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, strconv.FormatInt(v, 10)})
}

// SetAttrFloat attaches a float attribute.
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, strconv.FormatFloat(v, 'g', -1, 64)})
}

// End closes the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end = time.Now()
}

// Duration is the span's closed duration (0 if unfinished or nil).
func (s *Span) Duration() time.Duration {
	if s == nil || s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// root walks to the span's root ancestor, whose id becomes the trace lane
// (tid): children nest inside their root's lane, concurrent root spans get
// separate lanes.
func (s *Span) root() *Span {
	for s.parent != nil {
		s = s.parent
	}
	return s
}

// Events converts every finished span into a Chrome "complete" (ph "X")
// trace event under the given pid, timestamps in microseconds since the
// tracer started.
func (t *Tracer) Events(pid int) []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	var events []TraceEvent
	for _, s := range spans {
		if s.end.IsZero() {
			continue
		}
		ev := TraceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.start.Sub(t.start)) / float64(time.Microsecond),
			Dur:  float64(s.end.Sub(s.start)) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  s.root().id,
		}
		if len(s.attrs) > 0 {
			ev.Args = map[string]any{}
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	return events
}
