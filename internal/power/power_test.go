package power

import (
	"math"
	"testing"
)

func TestSystemWattsMatchPaper(t *testing.T) {
	cases := []struct {
		sys  System
		want float64
	}{
		{Server4215, 307},
		{Server4216, 337},
		{PiMServer, 767},
	}
	for _, tc := range cases {
		if got := tc.sys.Watts(); math.Abs(got-tc.want) > 0.01 {
			t.Errorf("%s = %v W, paper says %v", tc.sys.Name, got, tc.want)
		}
	}
}

func TestTable8Energies(t *testing.T) {
	// Table 8 is power x Table 5/6 runtimes; reproduce all six cells.
	cases := []struct {
		sys     System
		seconds float64
		wantKJ  float64
	}{
		{Server4215, 5882, 1805}, // 16S
		{Server4216, 3538, 1192},
		{PiMServer, 632, 484},
		{Server4215, 4044, 1241}, // PacBio
		{Server4216, 2788, 939},
		{PiMServer, 505, 387},
	}
	for _, tc := range cases {
		got := tc.sys.EnergyKJ(tc.seconds)
		if math.Abs(got-tc.wantKJ) > tc.wantKJ*0.01 {
			t.Errorf("%s x %.0fs = %.0f kJ, paper says %.0f", tc.sys.Name, tc.seconds, got, tc.wantKJ)
		}
	}
}

func TestCostRatio(t *testing.T) {
	if r := PaperCosts.CostRatio(); math.Abs(r-20.0/11) > 0.01 {
		t.Errorf("cost ratio = %v, paper says ~1.8", r)
	}
	if (CostModel{}).CostRatio() != 0 {
		t.Error("zero-cost model should not divide by zero")
	}
}

func TestPerfPerCost(t *testing.T) {
	// The paper's argument: 5.5x speedup for 1.8x cost is a ~3x win.
	v := PaperCosts.PerfPerCost(5.5)
	if v < 2.9 || v > 3.2 {
		t.Errorf("perf/cost = %v, want ~3", v)
	}
	if (CostModel{}).PerfPerCost(5) != 0 {
		t.Error("zero-cost model should return 0")
	}
}

func TestEfficiencyGainRange(t *testing.T) {
	// Table 8 implies gains of 2.4-3.7x over the two Intel servers.
	g1, err := EfficiencyGain(Server4215, 5882, 632)
	if err != nil {
		t.Fatal(err)
	}
	if g1 < 3.5 || g1 > 3.9 {
		t.Errorf("16S vs 4215 gain = %v, want ~3.7", g1)
	}
	g2, err := EfficiencyGain(Server4216, 2788, 505)
	if err != nil {
		t.Fatal(err)
	}
	if g2 < 2.2 || g2 > 2.6 {
		t.Errorf("PacBio vs 4216 gain = %v, want ~2.4", g2)
	}
	if _, err := EfficiencyGain(Server4215, 100, 0); err == nil {
		t.Error("zero PiM time accepted")
	}
}
