// Package power implements the paper's §5.6 energy and cost analysis,
// following the component-level methodology of Falevoz & Legriel (Euro-Par
// 2023 workshops): per-part power figures from specifications, energy =
// power × execution time.
package power

import "fmt"

// Component is one powered system part.
type Component struct {
	Name  string
	Watts float64
}

// System is a server configuration.
type System struct {
	Name       string
	Components []Component
}

// Watts is the total power draw.
func (s System) Watts() float64 {
	var w float64
	for _, c := range s.Components {
		w += c.Watts
	}
	return w
}

// EnergyJoules is the energy of a run taking the given time.
func (s System) EnergyJoules(seconds float64) float64 {
	return s.Watts() * seconds
}

// EnergyKJ is EnergyJoules in kilojoules, the unit of Table 8.
func (s System) EnergyKJ(seconds float64) float64 {
	return s.EnergyJoules(seconds) / 1000
}

// The paper's three systems. The totals match §5.6 exactly (307 W, 337 W,
// 767 W); the per-part split follows the cited methodology.
var (
	// Server4215 is the dual Xeon Silver 4215 server (85 W TDP parts).
	Server4215 = System{
		Name: "Intel 4215",
		Components: []Component{
			{"2x Xeon Silver 4215", 170},
			{"8x DDR4 DIMM", 24},
			{"chassis+fans+PSU", 113},
		},
	}
	// Server4216 is the dual Xeon Silver 4216 server (100 W TDP parts).
	Server4216 = System{
		Name: "Intel 4216",
		Components: []Component{
			{"2x Xeon Silver 4216", 200},
			{"8x DDR4 DIMM", 24},
			{"chassis+fans+PSU", 113},
		},
	}
	// PiMServer is the 4215 server plus 20 UPMEM PiM DIMMs (23 W each).
	PiMServer = System{
		Name: "UPMEM PiM",
		Components: []Component{
			{"2x Xeon Silver 4215", 170},
			{"8x DDR4 DIMM", 24},
			{"chassis+fans+PSU", 113},
			{"20x UPMEM PiM DIMM", 460},
		},
	}
)

// CostModel is the §5.6 acquisition-cost comparison.
type CostModel struct {
	BaseServerEUR float64 // the Intel 4216 server
	PiMDIMMsEUR   float64 // adding the 20 PiM DIMMs
}

// PaperCosts are the figures quoted in §5.6.
var PaperCosts = CostModel{BaseServerEUR: 11_000, PiMDIMMsEUR: 9_000}

// CostRatio is the price multiplier of the PiM-equipped server over the
// base server (the paper's 1.8x).
func (c CostModel) CostRatio() float64 {
	if c.BaseServerEUR == 0 {
		return 0
	}
	return (c.BaseServerEUR + c.PiMDIMMsEUR) / c.BaseServerEUR
}

// PerfPerCost relates a measured speedup to the cost ratio: values above 1
// mean the PiM investment buys more throughput than it costs.
func (c CostModel) PerfPerCost(speedup float64) float64 {
	r := c.CostRatio()
	if r == 0 {
		return 0
	}
	return speedup / r
}

// EfficiencyGain is the energy ratio of a baseline run against a PiM run
// (the paper's "2.4 to 3.7x less power").
func EfficiencyGain(baseline System, baselineSec float64, pimSec float64) (float64, error) {
	pe := PiMServer.EnergyJoules(pimSec)
	if pe <= 0 {
		return 0, fmt.Errorf("power: non-positive PiM energy")
	}
	return baseline.EnergyJoules(baselineSec) / pe, nil
}
