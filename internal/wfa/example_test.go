package wfa_test

import (
	"fmt"

	"pimnw/internal/core"
	"pimnw/internal/seq"
	"pimnw/internal/wfa"
)

func ExampleAlignParams() {
	a := seq.MustFromString("ACGTACGT")
	b := seq.MustFromString("ACGAACGT")
	res, _ := wfa.AlignParams(a, b, core.DefaultParams())
	fmt.Println(res.Score, res.Penalty, res.Cigar)
	// Output: 10 6 3=1X4=
}

func ExampleFromParams() {
	p, _ := wfa.FromParams(core.DefaultParams())
	fmt.Println(p.Mismatch, p.GapOpen, p.GapExt)
	// Output: 6 4 3
}
