package wfa

import (
	"fmt"

	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

// backtrack reconstructs the optimal path from the retained wavefronts,
// mirroring the forward pass's tie-breaking (mismatch before I before D;
// gap-open before gap-extend — maxOff prefers its first argument).
//
// Component/CIGAR mapping: the I component consumes a target character
// (cigar.Del relative to the query); the D component consumes a query
// character (cigar.Ins).
func backtrack(a, b seq.Seq, p Penalties, ws *waves, sFinal int32) cigar.Cigar {
	var c cigar.Cigar
	s := sFinal
	comp := compM
	k := int32(len(b) - len(a))
	h := offset(len(b))
	guard := 4 * (len(a) + len(b) + 4)

	for {
		if guard--; guard < 0 {
			panic("wfa: backtrack did not terminate")
		}
		switch comp {
		case compM:
			if s == 0 {
				// The initial extension run from (0,0) on diagonal 0.
				c = c.Append(cigar.Match, int(h))
				return c.Reverse()
			}
			// Undo the match extension down to the pre-extend offset.
			misW := ws.get(compM, s-p.Mismatch)
			var mis offset = offNone
			if misW != nil && misW.at(k) > offNone {
				mis = misW.at(k) + 1
			}
			iv := ws.get(compI, s).at(k)
			dv := ws.get(compD, s).at(k)
			h0 := maxOff(mis, maxOff(iv, dv))
			if h0 <= offNone {
				panic(fmt.Sprintf("wfa: no predecessor for M state s=%d k=%d h=%d", s, k, h))
			}
			if h > h0 {
				c = c.Append(cigar.Match, int(h-h0))
				h = h0
			}
			switch {
			case h == mis:
				c = c.Append(cigar.Mismatch, 1)
				s -= p.Mismatch
				h--
			case h == iv:
				comp = compI
			default:
				comp = compD
			}
		case compI:
			// One target character consumed: a deletion from the query.
			c = c.Append(cigar.Del, 1)
			open := ws.get(compM, s-p.GapOpen-p.GapExt)
			h--
			if open != nil && open.at(k-1) == h {
				s -= p.GapOpen + p.GapExt
				comp = compM
			} else {
				s -= p.GapExt
			}
			k--
		case compD:
			// One query character consumed: an insertion.
			c = c.Append(cigar.Ins, 1)
			open := ws.get(compM, s-p.GapOpen-p.GapExt)
			if open != nil && open.at(k+1) == h {
				s -= p.GapOpen + p.GapExt
				comp = compM
			} else {
				s -= p.GapExt
			}
			k++
		}
	}
}
