package wfa

import (
	"math/rand"
	"testing"

	"pimnw/internal/cigar"
	"pimnw/internal/core"
	"pimnw/internal/seq"
)

func TestPenaltiesValidate(t *testing.T) {
	good := Penalties{Mismatch: 6, GapOpen: 4, GapExt: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Penalties{
		{Mismatch: 0, GapOpen: 4, GapExt: 3},
		{Mismatch: 6, GapOpen: -1, GapExt: 3},
		{Mismatch: 6, GapOpen: 4, GapExt: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFromParams(t *testing.T) {
	p, err := FromParams(core.DefaultParams()) // 2,-4,4,2
	if err != nil {
		t.Fatal(err)
	}
	if p.Mismatch != 6 || p.GapOpen != 4 || p.GapExt != 3 {
		t.Errorf("penalties = %+v, want {6 4 3}", p)
	}
	odd := core.Params{Match: 3, Mismatch: -4, GapOpen: 4, GapExt: 2}
	if _, err := FromParams(odd); err == nil {
		t.Error("odd match score accepted")
	}
}

func TestScoreIdentical(t *testing.T) {
	a := seq.MustFromString("ACGTACGTAC")
	res, err := Score(a, a, Penalties{Mismatch: 6, GapOpen: 4, GapExt: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 0 {
		t.Errorf("penalty = %d, want 0", res.Penalty)
	}
}

func TestScoreSingleMismatch(t *testing.T) {
	a := seq.MustFromString("ACGTACGT")
	b := seq.MustFromString("ACGAACGT")
	res, err := Score(a, b, Penalties{Mismatch: 6, GapOpen: 4, GapExt: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 6 {
		t.Errorf("penalty = %d, want 6", res.Penalty)
	}
}

func TestScoreSingleGap(t *testing.T) {
	a := seq.MustFromString("ACGTACGT")
	b := seq.MustFromString("ACGACGT") // one deletion
	res, err := Score(a, b, Penalties{Mismatch: 6, GapOpen: 4, GapExt: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 7 {
		t.Errorf("penalty = %d, want o+e = 7", res.Penalty)
	}
}

func TestEmptySequences(t *testing.T) {
	p := Penalties{Mismatch: 6, GapOpen: 4, GapExt: 3}
	res, err := Score(nil, nil, p)
	if err != nil || res.Penalty != 0 {
		t.Fatalf("empty/empty: %+v %v", res, err)
	}
	a := seq.MustFromString("ACG")
	res, err = Align(a, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 4+3*3 {
		t.Errorf("penalty vs empty = %d, want 13", res.Penalty)
	}
	if res.Cigar.String() != "3I" {
		t.Errorf("cigar = %v", res.Cigar)
	}
	res, err = Align(nil, a, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cigar.String() != "3D" {
		t.Errorf("cigar = %v", res.Cigar)
	}
}

// TestMatchesGotohProperty is the headline oracle test: WFA and the Gotoh
// DP must agree on the optimal score for every input under the score
// transform.
func TestMatchesGotohProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	params := core.DefaultParams()
	for trial := 0; trial < 120; trial++ {
		var a, b seq.Seq
		switch trial % 3 {
		case 0:
			a = seq.Random(rng, rng.Intn(60))
			b = seq.Random(rng, rng.Intn(60))
		case 1:
			a = seq.Random(rng, 20+rng.Intn(200))
			b = seq.UniformErrors(0.1).Apply(rng, a)
		default:
			a = seq.Random(rng, 20+rng.Intn(100))
			b = seq.UniformErrors(0.35).Apply(rng, a)
		}
		want := core.GotohScore(a, b, params).Score
		res, err := ScoreParams(a, b, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != want {
			t.Fatalf("trial %d (%d/%d bases): wfa %d != gotoh %d",
				trial, len(a), len(b), res.Score, want)
		}
	}
}

func TestAlignCigarConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	params := core.DefaultParams()
	for trial := 0; trial < 80; trial++ {
		var a, b seq.Seq
		if trial%2 == 0 {
			a = seq.Random(rng, rng.Intn(50))
			b = seq.Random(rng, rng.Intn(50))
		} else {
			a, b = seq.Random(rng, 30+rng.Intn(150)), nil
			b = seq.UniformErrors(0.15).Apply(rng, a)
		}
		res, err := AlignParams(a, b, params)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Cigar.Validate(a, b); err != nil {
			t.Fatalf("trial %d: invalid cigar: %v (a=%v b=%v)", trial, err, a, b)
		}
		// The CIGAR's affine score must equal the transformed penalty.
		if got := core.ScoreFromCigar(res.Cigar, params); got != res.Score {
			t.Fatalf("trial %d: cigar score %d, wfa score %d (cigar=%v)",
				trial, got, res.Score, res.Cigar)
		}
	}
}

func TestAlignAffineGapRuns(t *testing.T) {
	// A single long gap must come out as one run (affine), not fragments.
	params := core.DefaultParams()
	rng := rand.New(rand.NewSource(33))
	a := seq.Random(rng, 200)
	b := append(a[:80].Clone(), a[120:]...)
	res, err := AlignParams(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Cigar.Stats()
	if st.GapOpens != 1 || st.Insertions != 40 {
		t.Errorf("expected one 40-base insertion run, got %v", res.Cigar)
	}
}

func TestCellsGrowWithDivergence(t *testing.T) {
	// WFA's defining property: work scales with the penalty, not the
	// sequence length — close pairs are nearly free.
	rng := rand.New(rand.NewSource(34))
	params := core.DefaultParams()
	a := seq.Random(rng, 2000)
	close := seq.UniformErrors(0.01).Apply(rng, a)
	far := seq.UniformErrors(0.20).Apply(rng, a)
	resClose, err := ScoreParams(a, close, params)
	if err != nil {
		t.Fatal(err)
	}
	resFar, err := ScoreParams(a, far, params)
	if err != nil {
		t.Fatal(err)
	}
	if resFar.Cells < 10*resClose.Cells {
		t.Errorf("divergent pair cells %d not ≫ close pair cells %d", resFar.Cells, resClose.Cells)
	}
}

func TestScoreOnlyOmitsCigar(t *testing.T) {
	a := seq.MustFromString("ACGT")
	res, err := Score(a, a, Penalties{Mismatch: 6, GapOpen: 4, GapExt: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cigar != nil {
		t.Error("score-only run produced a cigar")
	}
}

func TestPrettyRoundTrip(t *testing.T) {
	params := core.DefaultParams()
	a := seq.MustFromString("ACGTTAGCTAGCCTA")
	b := seq.MustFromString("ACCTTAGCTAGCTAG")
	res, err := AlignParams(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := res.Cigar.Replay(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(b) {
		t.Error("cigar does not replay the target")
	}
	_ = cigar.Cigar(res.Cigar).String()
}
