// Package wfa implements the gap-affine wavefront alignment algorithm
// (Marco-Sola et al., Bioinformatics 2020) — the modern exact aligner the
// paper cites as related work and borrows its dataset generator from. It
// serves two roles in this repository: an independent exact oracle for the
// DP implementations (WFA provably returns the optimal affine-gap score),
// and the host-side comparator for the extension experiments.
//
// WFA is formulated as penalty minimisation with free matches; the
// maximisation scores of internal/core map onto it exactly (see
// FromParams): an alignment maximising M·a + X·b − Σ(O + len·E) minimises
// b·x + k·o + len·e with x = M−X, o = O, e = E + M/2, and the scores
// relate by S = M·(m+n)/2 − P. Why the paper still uses the banded DP on
// the DPU: WFA's working set grows with the penalty (O(s²) cells for
// divergent pairs), which neither fits the 64 KB WRAM nor bounds MRAM
// traffic, whereas the band is a fixed w·(m+n) budget.
package wfa

import (
	"fmt"

	"pimnw/internal/cigar"
	"pimnw/internal/core"
	"pimnw/internal/seq"
)

// Penalties is the WFA cost model: matches are free, everything else is a
// non-negative penalty to minimise.
type Penalties struct {
	Mismatch int32 // x > 0
	GapOpen  int32 // o >= 0
	GapExt   int32 // e > 0
}

// Validate rejects models WFA cannot handle.
func (p Penalties) Validate() error {
	if p.Mismatch <= 0 {
		return fmt.Errorf("wfa: mismatch penalty must be positive, got %d", p.Mismatch)
	}
	if p.GapOpen < 0 {
		return fmt.Errorf("wfa: gap-open penalty must be non-negative, got %d", p.GapOpen)
	}
	if p.GapExt <= 0 {
		return fmt.Errorf("wfa: gap-extend penalty must be positive, got %d", p.GapExt)
	}
	return nil
}

// FromParams converts the library's maximisation scores into WFA
// penalties. It requires an even Match score (the standard score-to-
// penalty transform divides it by two).
func FromParams(p core.Params) (Penalties, error) {
	if p.Match%2 != 0 {
		return Penalties{}, fmt.Errorf("wfa: match score %d must be even for the penalty transform", p.Match)
	}
	return Penalties{
		Mismatch: p.Match - p.Mismatch,
		GapOpen:  p.GapOpen,
		GapExt:   p.GapExt + p.Match/2,
	}, nil
}

// ScoreFromPenalty maps a WFA penalty back to the maximisation score of an
// (m,n) global alignment.
func ScoreFromPenalty(p core.Params, m, n int, penalty int32) int32 {
	return p.Match*int32(m+n)/2 - penalty
}

// offset is a furthest-reaching point: the number of target characters
// consumed (the column h); the row is recovered as v = h - k.
type offset int32

// offNone marks an unreachable wavefront cell.
const offNone offset = -(1 << 30)

// wavefront is one (score, component) diagonal range of furthest offsets.
type wavefront struct {
	lo, hi int32 // diagonal range [lo, hi]
	off    []offset
}

func (w *wavefront) at(k int32) offset {
	if w == nil || k < w.lo || k > w.hi {
		return offNone
	}
	return w.off[k-w.lo]
}

func newWavefront(lo, hi int32) *wavefront {
	w := &wavefront{lo: lo, hi: hi, off: make([]offset, hi-lo+1)}
	for i := range w.off {
		w.off[i] = offNone
	}
	return w
}

// waves holds the M/I/D wavefronts of every penalty computed so far
// (retained in full so the traceback can walk them).
type waves struct {
	m, i, d []*wavefront
}

func (ws *waves) get(comp int, s int32) *wavefront {
	var arr []*wavefront
	switch comp {
	case compM:
		arr = ws.m
	case compI:
		arr = ws.i
	default:
		arr = ws.d
	}
	if s < 0 || int(s) >= len(arr) {
		return nil
	}
	return arr[s]
}

const (
	compM = iota
	compI // gap in the query: consumes target (h+1), diagonal k+1
	compD // gap in the target: consumes query (v+1), diagonal k-1
)

// Result is a WFA alignment outcome.
type Result struct {
	// Penalty is the minimal WFA penalty.
	Penalty int32
	// Score is the equivalent maximisation score under the core Params
	// the run was configured from (only set by AlignParams/ScoreParams).
	Score int32
	// Cigar is the optimal path (nil for score-only runs).
	Cigar cigar.Cigar
	// Cells counts wavefront offsets computed, WFA's work metric.
	Cells int64
}

// Score computes the minimal penalty of a global alignment.
func Score(a, b seq.Seq, p Penalties) (Result, error) {
	return run(a, b, p, false)
}

// Align additionally produces the CIGAR. Memory is O(s·s) offsets for a
// final penalty s.
func Align(a, b seq.Seq, p Penalties) (Result, error) {
	return run(a, b, p, true)
}

// ScoreParams scores under the library's maximisation model.
func ScoreParams(a, b seq.Seq, params core.Params) (Result, error) {
	p, err := FromParams(params)
	if err != nil {
		return Result{}, err
	}
	res, err := Score(a, b, p)
	if err != nil {
		return res, err
	}
	res.Score = ScoreFromPenalty(params, len(a), len(b), res.Penalty)
	return res, nil
}

// AlignParams aligns under the library's maximisation model.
func AlignParams(a, b seq.Seq, params core.Params) (Result, error) {
	p, err := FromParams(params)
	if err != nil {
		return Result{}, err
	}
	res, err := Align(a, b, p)
	if err != nil {
		return res, err
	}
	res.Score = ScoreFromPenalty(params, len(a), len(b), res.Penalty)
	return res, nil
}

func run(a, b seq.Seq, p Penalties, traceback bool) (Result, error) {
	var res Result
	if err := p.Validate(); err != nil {
		return res, err
	}
	m, n := len(a), len(b)
	kFinal := int32(n - m)
	offFinal := offset(n)

	ws := &waves{}
	// Penalty 0: extend the initial match run from (0,0).
	w0 := newWavefront(0, 0)
	w0.off[0] = extend(a, b, 0, 0)
	ws.m = append(ws.m, w0)
	ws.i = append(ws.i, nil)
	ws.d = append(ws.d, nil)
	res.Cells = 1

	if w0.off[0] == offFinal && kFinal == 0 {
		res.Penalty = 0
		if traceback {
			res.Cigar = backtrack(a, b, p, ws, 0)
		}
		return res, nil
	}

	// Hard ceiling: any global alignment costs at most a full mismatch +
	// gap rewrite; a penalty beyond that means an internal bug.
	limit := p.Mismatch*int32(min(m, n)) + 2*(p.GapOpen+p.GapExt*int32(m+n)) + 16

	for s := int32(1); ; s++ {
		if s > limit {
			return res, fmt.Errorf("wfa: penalty exceeded the theoretical ceiling %d", limit)
		}
		mw := ws.get(compM, s-p.Mismatch)
		ow := ws.get(compM, s-p.GapOpen-p.GapExt)
		iw := ws.get(compI, s-p.GapExt)
		dw := ws.get(compD, s-p.GapExt)

		lo, hi, any := waveRange(mw, ow, iw, dw)
		if !any {
			ws.m = append(ws.m, nil)
			ws.i = append(ws.i, nil)
			ws.d = append(ws.d, nil)
			continue
		}
		nm := newWavefront(lo, hi)
		ni := newWavefront(lo, hi)
		nd := newWavefront(lo, hi)
		for k := lo; k <= hi; k++ {
			// I: gap consuming target, arriving on diagonal k from k-1.
			iv := maxOff(ow.at(k-1), iw.at(k-1))
			if iv > offNone {
				iv++
			}
			ni.off[k-lo] = iv
			// D: gap consuming query, arriving from k+1, offset unchanged.
			dv := maxOff(ow.at(k+1), dw.at(k+1))
			nd.off[k-lo] = dv
			// M: mismatch from the same diagonal, or close a gap.
			mv := mw.at(k)
			if mv > offNone {
				mv++
			}
			mv = maxOff(mv, maxOff(iv, dv))
			if mv > offNone {
				v := int(mv) - int(k)
				if v < 0 || v > m || int(mv) > n {
					mv = offNone // fell off the matrix
				} else {
					mv = extend(a, b, k, mv)
				}
			}
			nm.off[k-lo] = mv
			res.Cells += 3
		}
		ws.m = append(ws.m, nm)
		ws.i = append(ws.i, ni)
		ws.d = append(ws.d, nd)

		if kFinal >= lo && kFinal <= hi && nm.at(kFinal) == offFinal {
			res.Penalty = s
			if traceback {
				res.Cigar = backtrack(a, b, p, ws, s)
			}
			return res, nil
		}
	}
}

// extend advances an M offset along its diagonal while characters match.
func extend(a, b seq.Seq, k int32, h offset) offset {
	v := int(h) - int(k)
	hh := int(h)
	for v < len(a) && hh < len(b) && a[v] == b[hh] {
		v++
		hh++
	}
	return offset(hh)
}

// waveRange computes the diagonal span of the next wavefront.
func waveRange(mw, ow, iw, dw *wavefront) (lo, hi int32, any bool) {
	lo, hi = 1<<30, -(1 << 30)
	grow := func(w *wavefront, dlo, dhi int32) {
		if w == nil {
			return
		}
		if w.lo+dlo < lo {
			lo = w.lo + dlo
		}
		if w.hi+dhi > hi {
			hi = w.hi + dhi
		}
		any = true
	}
	grow(mw, 0, 0)
	grow(ow, -1, 1)
	grow(iw, 1, 1)
	grow(dw, -1, -1)
	return lo, hi, any
}

func maxOff(a, b offset) offset {
	if a >= b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
