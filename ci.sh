#!/bin/sh
# ci.sh — the tier-1 gate for this repository (see ROADMAP.md).
#
# Runs, in order:
#   1. gofmt -l          (fails if any file is unformatted)
#   2. go vet ./...
#   3. go build ./...
#   4. go test -race ./...
#   5. benchmark smoke   (every benchmark compiles and runs once)
#   6. allocation gate   (core-engine allocs/op must not exceed the
#                         committed baseline; see cmd/benchgate)
#   7. alignd smoke      (serve over HTTP, diff against the one-shot
#                         CLI, draining healthz, graceful SIGTERM
#                         drain; see ci/alignd_smoke.sh)
#   8. loadgen smoke     (overload the admission stack: shed ladder
#                         engages and releases, zero unlabelled
#                         degradations; see ci/loadgen_smoke.sh)
#
# Any step failing fails the script. This is a superset of ROADMAP.md's
# minimal `go build ./... && go test ./...` gate.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
# Check the whole module, not just cmd/ and internal/ — top-level files
# like bench_test.go and doc.go are covered by the walk from ".".
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    gofmt -d $unformatted >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (-benchtime=1x) =="
go test -run='^$' -bench=. -benchtime=1x ./...

echo "== allocation gate =="
# -benchtime=20x amortises the one-time sync.Pool warm-up into the
# iteration count, so the steady-state allocs/op floor (0 for the score
# path) is what gets compared. Timing is ignored in -allocs-only mode,
# so the short benchtime is fine.
go run ./cmd/benchgate -allocs-only -count=1 -benchtime=20x \
    -out "${TMPDIR:-/tmp}/bench_allocs.json"

echo "== alignd smoke =="
./ci/alignd_smoke.sh

echo "== loadgen smoke =="
./ci/loadgen_smoke.sh

echo "CI PASS"
