// Consensus reproduces the §5.4 workflow end to end: the reads of a
// PacBio-like set are pairwise aligned on the simulated PiM server (CIGARs
// required), one read is chosen as the backbone, and the other reads'
// alignments vote on every backbone column — substitutions, deletions and
// insertions — to polish it. A second polishing round realigns the reads
// against the first-round consensus. The example reports how far the raw
// backbone sits from the true region and how much closer each round gets.
package main

import (
	"fmt"
	"os"
	"sort"

	"pimnw/internal/cigar"
	"pimnw/internal/core"
	"pimnw/internal/datasets"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consensus:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := datasets.PacBio.Scaled(0) // one set
	spec.ReadsMin, spec.ReadsMax = 12, 12
	spec.RegionMin, spec.RegionMax = 3000, 3000
	set := spec.Generate()[0]
	fmt.Printf("read set: %d reads of a %d-base region, ~%.0f%% error rate\n",
		len(set.Reads), len(set.Region), 100*spec.ErrorRate)

	// Round 1: align every read against the backbone (read 0) on the
	// simulated PiM server — the paper's §5.4 kernel with traceback.
	backbone := set.Reads[0]
	others := set.Reads[1:]
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      128,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: true,
			PIM:       pimCfg,
		},
	}
	var pairs []host.Pair
	for i, r := range others {
		pairs = append(pairs, host.Pair{ID: i, A: r, B: backbone})
	}
	rep, results, err := host.AlignPairs(cfg, pairs)
	if err != nil {
		return err
	}
	fmt.Printf("aligned %d read pairs in %.3f ms modelled PiM time\n",
		rep.Alignments, rep.MakespanSec*1e3)

	cigars := make([]cigar.Cigar, len(others))
	for _, r := range results {
		if !r.InBand {
			continue
		}
		c, err := cigar.Parse(string(r.Cigar))
		if err != nil {
			return err
		}
		cigars[r.ID] = c
	}
	round1 := vote(backbone, others, cigars)

	// Round 2: realign against the polished consensus and vote again.
	p := core.DefaultParams()
	cigars2 := make([]cigar.Cigar, len(others))
	for i, r := range others {
		res := core.AdaptiveBandAlign(r, round1, p, 128)
		if res.InBand {
			cigars2[i] = res.Cigar
		}
	}
	round2 := vote(round1, others, cigars2)

	report := func(label string, s seq.Seq) {
		d := core.EditDistance(s, set.Region)
		fmt.Printf("%-28s: %5d edits vs truth (%.2f%%)\n",
			label, d, 100*float64(d)/float64(len(set.Region)))
	}
	report("backbone read (raw)", backbone)
	report("consensus after round 1", round1)
	report("consensus after round 2", round2)
	raw := core.EditDistance(backbone, set.Region)
	final := core.EditDistance(round2, set.Region)
	if final < raw {
		fmt.Printf("consensus voting removed %.0f%% of the errors\n",
			100*(1-float64(final)/float64(raw)))
	}
	return nil
}

// vote polishes the backbone: every aligned read votes per backbone column
// for a base or a deletion, and for insertions between columns; majorities
// rewrite the sequence.
func vote(backbone seq.Seq, reads []seq.Seq, cigars []cigar.Cigar) seq.Seq {
	const del = seq.NumBases
	colVotes := make([][seq.NumBases + 1]int, len(backbone))
	insVotes := make([]map[string]int, len(backbone)+1)
	covering := make([]int, len(backbone))
	for i, b := range backbone {
		colVotes[i][b]++
		covering[i]++
	}
	aligned := 0
	for ri, c := range cigars {
		if c == nil {
			continue
		}
		aligned++
		read := reads[ri]
		qi, ti := 0, 0
		for _, op := range c {
			switch op.Kind {
			case cigar.Match, cigar.Mismatch:
				for k := 0; k < op.Len; k++ {
					colVotes[ti+k][read[qi+k]]++
					covering[ti+k]++
				}
				qi += op.Len
				ti += op.Len
			case cigar.Ins:
				if insVotes[ti] == nil {
					insVotes[ti] = map[string]int{}
				}
				insVotes[ti][read[qi:qi+op.Len].String()]++
				qi += op.Len
			case cigar.Del:
				for k := 0; k < op.Len; k++ {
					colVotes[ti+k][del]++
					covering[ti+k]++
				}
				ti += op.Len
			}
		}
	}

	var out seq.Seq
	emitIns := func(pos int) {
		votes := insVotes[pos]
		if votes == nil {
			return
		}
		total := 0
		for _, n := range votes {
			total += n
		}
		// A majority of aligned reads must support an insertion here.
		if total*2 <= aligned {
			return
		}
		runs := make([]string, 0, len(votes))
		for r := range votes {
			runs = append(runs, r)
		}
		sort.Slice(runs, func(a, b int) bool {
			if votes[runs[a]] != votes[runs[b]] {
				return votes[runs[a]] > votes[runs[b]]
			}
			return runs[a] < runs[b]
		})
		out = append(out, seq.MustFromString(runs[0])...)
	}
	for i := range backbone {
		emitIns(i)
		v := colVotes[i]
		best, bestN := 0, v[0]
		for cand := 1; cand <= del; cand++ {
			if v[cand] > bestN {
				best, bestN = cand, v[cand]
			}
		}
		if best != del {
			out = append(out, seq.Base(best))
		}
	}
	emitIns(len(backbone))
	return out
}
