// Phylogeny16s reproduces the §5.3 workflow end to end: an all-against-all
// score-only comparison of 16S-like rRNA sequences on the simulated PiM
// server (broadcast mode), converted into a distance matrix and a UPGMA
// guide tree — the phylogeny construction the paper motivates the
// experiment with.
package main

import (
	"fmt"
	"os"
	"strings"

	"pimnw/internal/core"
	"pimnw/internal/datasets"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phylogeny16s:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := datasets.RRNA16S.Scaled(0.0025) // ~24 sequences: printable tree
	seqs := spec.Generate()
	n := len(seqs)
	fmt.Printf("16S-like population: %d sequences of ~%d bases, %d pairwise comparisons\n",
		n, spec.Length, n*(n-1)/2)

	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry: kernel.DefaultGeometry(),
			Band:     128,
			Params:   core.DefaultParams(),
			Costs:    pim.Asm,
			PIM:      pimCfg,
		},
	}
	rep, results, err := host.AlignAllPairs(cfg, seqs)
	if err != nil {
		return err
	}
	fmt.Printf("broadcast + score-only kernel: %.3f ms modelled on one rank, %d cells\n\n",
		rep.MakespanSec*1e3, rep.TotalCells)

	// Scores -> normalised distances. A self alignment scores
	// len*Match; the distance is the score deficit per base.
	indices := host.AllPairIndices(n)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	p := core.DefaultParams()
	for _, r := range results {
		pi := indices[r.ID]
		self := float64(len(seqs[pi.I])+len(seqs[pi.J])) / 2 * float64(p.Match)
		d := (self - float64(r.Score)) / self
		if d < 0 {
			d = 0
		}
		dist[pi.I][pi.J], dist[pi.J][pi.I] = d, d
	}

	fmt.Println("UPGMA guide tree (leaf = sequence index, heights = avg distance):")
	fmt.Println(upgma(dist))
	return nil
}

// upgma builds the classic average-linkage hierarchy and renders it as a
// Newick string.
func upgma(d [][]float64) string {
	n := len(d)
	type cluster struct {
		newick string
		size   int
	}
	clusters := map[int]*cluster{}
	for i := 0; i < n; i++ {
		clusters[i] = &cluster{newick: fmt.Sprintf("s%d", i), size: 1}
	}
	// Work on a copy of the distance matrix indexed by live cluster ids.
	dist := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist[[2]int{i, j}] = d[i][j]
		}
	}
	get := func(a, b int) float64 {
		if a > b {
			a, b = b, a
		}
		return dist[[2]int{a, b}]
	}
	set := func(a, b int, v float64) {
		if a > b {
			a, b = b, a
		}
		dist[[2]int{a, b}] = v
	}
	next := n
	for len(clusters) > 1 {
		// Find the closest pair of live clusters.
		bestA, bestB, bestD := -1, -1, 0.0
		for a := range clusters {
			for b := range clusters {
				if a >= b {
					continue
				}
				if v := get(a, b); bestA < 0 || v < bestD {
					bestA, bestB, bestD = a, b, v
				}
			}
		}
		ca, cb := clusters[bestA], clusters[bestB]
		merged := &cluster{
			newick: fmt.Sprintf("(%s,%s):%.3f", ca.newick, cb.newick, bestD/2),
			size:   ca.size + cb.size,
		}
		// Average-linkage distances to the merged cluster.
		for c := range clusters {
			if c == bestA || c == bestB {
				continue
			}
			v := (get(bestA, c)*float64(ca.size) + get(bestB, c)*float64(cb.size)) /
				float64(ca.size+cb.size)
			set(next, c, v)
		}
		delete(clusters, bestA)
		delete(clusters, bestB)
		clusters[next] = merged
		next++
	}
	for _, c := range clusters {
		return strings.ReplaceAll(c.newick, "),(", "),\n (") + ";"
	}
	return ""
}
