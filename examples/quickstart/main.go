// Quickstart: align two diverged DNA sequences with every formulation in
// the library — exact Gotoh, static band, adaptive band (the paper's
// kernel algorithm) — and once more through the full simulated UPMEM PiM
// stack, printing a Figure-1-style pretty alignment along the way.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A small Figure-1 example first: one mismatch, one insertion, one
	// deletion.
	a := seq.MustFromString("ACGTTAGCTAGCCTA")
	b := seq.MustFromString("ACCTTAGCTAGCTAG")
	p := core.DefaultParams()
	res := core.GotohAlign(a, b, p)
	fmt.Println("— Figure 1: two short sequences, exact affine-gap alignment —")
	fmt.Printf("score=%d cigar=%s\n", res.Score, res.Cigar)
	fmt.Println(res.Cigar.Pretty(a, b, 60))

	// Now a long-read pair: 10 kb with 5% divergence, the S10000 regime.
	rng := rand.New(rand.NewSource(42))
	long := seq.Random(rng, 10_000)
	noisy := seq.UniformErrors(0.05).Apply(rng, long)

	exact := core.GotohScore(long, noisy, p)
	fmt.Printf("exact Gotoh        : score=%-6d cells=%.1fM\n", exact.Score, float64(exact.Cells)/1e6)

	static := core.StaticBandScore(long, noisy, p, 256)
	fmt.Printf("static band  w=256 : score=%-6d cells=%.1fM inBand=%v\n", static.Score, float64(static.Cells)/1e6, static.InBand)

	adaptive := core.AdaptiveBandAlign(long, noisy, p, 128)
	fmt.Printf("adaptive band w=128: score=%-6d cells=%.1fM inBand=%v (the paper's kernel)\n",
		adaptive.Score, float64(adaptive.Cells)/1e6, adaptive.InBand)
	if adaptive.Score == exact.Score {
		fmt.Println("adaptive band found the optimal alignment with a fraction of the work")
	}
	st := adaptive.Cigar.Stats()
	fmt.Printf("alignment: %d matches, %d mismatches, %d gap opens, identity %.1f%%\n\n",
		st.Matches, st.Mismatches, st.GapOpens, 100*st.Identity())

	// Finally, the same pair through the simulated PiM server.
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      128,
			Params:    p,
			Costs:     pim.Asm,
			Traceback: true,
			PIM:       pimCfg,
		},
	}
	rep, results, err := host.AlignPairs(cfg, []host.Pair{{ID: 0, A: long, B: noisy}})
	if err != nil {
		return err
	}
	r := results[0]
	fmt.Println("— the same pair on the simulated UPMEM PiM server —")
	fmt.Printf("DPU result: score=%d (matches host: %v)\n", r.Score, r.Score == adaptive.Score)
	fmt.Printf("modelled execution: %.3f ms on one rank (%d bytes up, %d bytes back)\n",
		rep.MakespanSec*1e3, rep.BytesIn, rep.BytesOut)
	return nil
}
