// Bandviz renders the paper's Figure 3: the geometry of a fixed band
// versus the adaptive band on a gappy alignment. The DP matrix is drawn as
// ASCII with the optimal path and the cells each heuristic evaluates, so
// you can see the static band lose a path that drifts off the main
// diagonal while the adaptive window follows it.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"pimnw/internal/cigar"
	"pimnw/internal/core"
	"pimnw/internal/seq"
)

const (
	n       = 120 // sequence length of the demo pair
	gapLen  = 30  // the structural gap that defeats the static band
	bandW   = 40  // band size for both heuristics
	cellDot = '.' // unevaluated cell
)

func main() {
	rng := rand.New(rand.NewSource(7))
	a := seq.Random(rng, n)
	b := append(a[:n/2].Clone(), a[n/2+gapLen:]...) // deletion in b
	p := core.DefaultParams()

	opt := core.GotohAlign(a, b, p)
	static := core.StaticBandScore(a, b, p, bandW)
	adaptive, offsets := core.AdaptiveBandPath(a, b, p, bandW)

	fmt.Printf("pair: %d vs %d bases, one %d-base gap; band size %d\n", len(a), len(b), gapLen, bandW)
	cig := opt.Cigar.String()
	if len(cig) > 24 {
		cig = cig[:24] + "..."
	}
	fmt.Printf("optimal score      : %d (%s)\n", opt.Score, cig)
	staticScore := "FAIL (path left the band)"
	if static.InBand {
		staticScore = fmt.Sprint(static.Score)
	}
	fmt.Printf("static band  w=%-3d: score=%s  <- the band cannot contain the drift\n",
		bandW, staticScore)
	fmt.Printf("adaptive band w=%-3d: score=%d inBand=%v  <- the window follows the path\n\n",
		bandW, adaptive.Score, adaptive.InBand)

	path := pathCells(opt.Cigar)
	fmt.Println("(A) fixed band: '#' = evaluated, '*' = optimal path, 'X' = path outside the band")
	draw(len(a), len(b), path, func(i, j int) bool {
		d := i - j
		h := bandW / 2
		return d <= h && d >= -h
	})
	fmt.Println("\n(B) adaptive band: the anti-diagonal window shifts right or down each step")
	draw(len(a), len(b), path, func(i, j int) bool {
		t := i + j
		pIdx := i - int(offsets[t])
		return pIdx >= 0 && pIdx < bandW
	})
}

// pathCells maps the optimal CIGAR to the set of (i,j) cells it crosses.
func pathCells(c cigar.Cigar) map[[2]int]bool {
	cells := map[[2]int]bool{{0, 0}: true}
	i, j := 0, 0
	for _, op := range c {
		for k := 0; k < op.Len; k++ {
			if op.Kind.ConsumesQuery() {
				i++
			}
			if op.Kind.ConsumesTarget() {
				j++
			}
			cells[[2]int{i, j}] = true
		}
	}
	return cells
}

// draw renders the matrix downsampled to at most ~60x60 characters.
func draw(m, n int, path map[[2]int]bool, inBand func(i, j int) bool) {
	const maxDim = 60
	step := (max(m, n) + maxDim - 1) / maxDim
	var sb strings.Builder
	for bi := 0; bi <= m; bi += step {
		for bj := 0; bj <= n; bj += step {
			ch := byte(cellDot)
			onPath, banded := false, false
			for i := bi; i < bi+step && i <= m; i++ {
				for j := bj; j < bj+step && j <= n; j++ {
					if path[[2]int{i, j}] {
						onPath = true
					}
					if inBand(i, j) {
						banded = true
					}
				}
			}
			switch {
			case onPath && banded:
				ch = '*'
			case onPath:
				ch = 'X'
			case banded:
				ch = '#'
			}
			sb.WriteByte(ch)
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
